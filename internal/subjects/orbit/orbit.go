// Package orbit re-implements the replication core of OrbitDB (evaluation
// subject 2): an eventually consistent, peer-to-peer append-only log
// database over a Merkle-CRDT (internal/merkle). Peers append payload
// entries, exchange entries to merge, and read the log in a linearized
// order.
//
// Five seedable defects reproduce the paper's OrbitDB bug benchmarks:
//
//   - BugTieBreaker (issue #513): the linearization tie-breaker is not a
//     total order for entries with equal clock and identity, so reads
//     depend on internal arrival order.
//   - BugFutureClock (issue #512): joins accept entries with Lamport
//     clocks set arbitrarily far into the future, halting progress.
//   - BugStaleHeadCache (issue #1153): appends use a cached head set that
//     is not refreshed by joins, producing entries that fail the access
//     check ("could not append entry although write access is granted").
//   - BugMutateAfterHash (issue #583): a sync annotates the newest entry
//     after it was hashed, so head hashes stop matching contents.
//   - BugLockLeak (issue #557): the repo folder lock is not released when
//     a close interleaves before the flush, so reopening fails.
package orbit

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"github.com/er-pi/erpi/internal/merkle"
	"github.com/er-pi/erpi/internal/replica"
)

// Flags seed the known defects.
type Flags struct {
	BugTieBreaker      bool `json:"bug_tie_breaker"`
	BugFutureClock     bool `json:"bug_future_clock"`
	BugStaleHeadCache  bool `json:"bug_stale_head_cache"`
	BugMutateAfterHash bool `json:"bug_mutate_after_hash"`
	BugLockLeak        bool `json:"bug_lock_leak"`
	// MaxClockSkew guards joins when BugFutureClock is off (0 = a default
	// of 1000).
	MaxClockSkew uint64 `json:"max_clock_skew,omitempty"`
}

// DB is one peer's database.
type DB struct {
	flags    Flags
	identity string
	log      *merkle.Log
	// headCache is the (possibly stale) head set used by appends when
	// BugStaleHeadCache is set.
	headCache []string
	// repoLocked models the on-disk repo folder lock of issue #557.
	repoLocked bool
	// dirty marks an unflushed write (the lock holder).
	dirty bool
	// open models whether the repo is currently open.
	open bool
	// lastHash is the most recent locally appended entry; sealed reports
	// whether it was flushed to disk. BugMutateAfterHash annotates only
	// unsealed entries, so the corruption depends on whether a sync
	// interleaves between the append and its seal.
	lastHash string
	sealed   bool
	// ver counts mutations for snapshot-cache invalidation
	// (replica.Versioned). read/verify/clockBelow are pure; every other
	// op bumps it — including SyncPayload when the issue-#583 defect
	// annotates an unsealed entry in place.
	ver uint64
}

var (
	_ replica.State     = (*DB)(nil)
	_ replica.Versioned = (*DB)(nil)
)

// StateVersion implements replica.Versioned.
func (d *DB) StateVersion() uint64 { return d.ver }

// New returns an empty, open database for the identity.
func New(identity string, flags Flags) *DB {
	tie := merkle.TieBreakIdentityHash
	if flags.BugTieBreaker {
		tie = merkle.TieBreakIdentityOnly
	}
	log := merkle.NewLog(identity, tie)
	if !flags.BugFutureClock {
		skew := flags.MaxClockSkew
		if skew == 0 {
			skew = 1000
		}
		log.MaxClockSkew = skew
	}
	return &DB{flags: flags, identity: identity, log: log, open: true}
}

// Append adds a payload entry. With BugStaleHeadCache the entry's parents
// come from the cached head set instead of the live one; an append whose
// parents miss current heads is rejected by the access check.
func (d *DB) Append(payload string) error {
	if !d.open {
		// A closed repo rejects writes; during exploration a close can
		// legitimately interleave before an append, so this is a failed op
		// rather than a fatal error.
		return replica.ErrFailedOp
	}
	if d.flags.BugLockLeak {
		if d.repoLocked && !d.dirty {
			return fmt.Errorf("orbit: repo folder locked (issue #557)")
		}
		d.repoLocked, d.dirty = true, true
	}
	if d.flags.BugStaleHeadCache {
		live := d.log.Heads()
		if d.headCache == nil {
			d.headCache = live
		}
		if !sameStrings(d.headCache, live) {
			// Defect: the cached heads diverge from the live heads after a
			// join; the access check rejects the append (issue #1153).
			d.headCache = nil // the failed attempt invalidates the cache
			return replica.ErrFailedOp
		}
		entry := d.log.Append(payload)
		d.headCache = []string{entry.Hash}
		d.lastHash, d.sealed = entry.Hash, false
		return nil
	}
	entry := d.log.Append(payload)
	d.lastHash, d.sealed = entry.Hash, false
	return nil
}

// Seal marks the latest append as flushed; sealed entries are safe from
// the issue-#583 post-hash mutation.
func (d *DB) Seal() { d.sealed = true }

// Flush releases the repo lock (issue #557's missing step when a close
// interleaves first).
func (d *DB) Flush() {
	if !d.flags.BugLockLeak {
		d.dirty = false
		d.repoLocked = false
		return
	}
	// Defect path: the unlock only runs while the repo is open; a flush
	// that lands after the close is a complete no-op, leaking both the
	// dirty marker and the folder lock.
	if d.open {
		d.dirty = false
		d.repoLocked = false
	}
}

// Close closes the repo. With BugLockLeak a close before the flush leaves
// the folder lock held.
func (d *DB) Close() {
	d.open = false
	if !d.flags.BugLockLeak {
		d.repoLocked = false
	}
}

// Reopen reopens the repo, failing if the folder lock leaked.
func (d *DB) Reopen() error {
	if d.repoLocked && d.dirty {
		return fmt.Errorf("orbit: repo folder keeps getting locked (issue #557)")
	}
	d.open = true
	return nil
}

// Read returns the linearized payloads.
func (d *DB) Read() []string { return d.log.Payloads() }

// Clock exposes the local Lamport clock.
func (d *DB) Clock() uint64 { return d.log.Clock() }

// AppendWithClock force-appends an entry with an explicit clock — the
// far-future append of issue #512 (a buggy or malicious peer). The forged
// entry enters the local DAG directly, bypassing the skew guard the way a
// peer's own writes do.
func (d *DB) AppendWithClock(payload string, clock uint64) *merkle.Entry {
	e := &merkle.Entry{Payload: payload, Clock: clock, Identity: d.identity, Parents: d.log.Heads()}
	e.Hash = e.ComputeHash()
	guard := d.log.MaxClockSkew
	d.log.MaxClockSkew = 0
	_ = d.log.Join([]*merkle.Entry{e})
	d.log.MaxClockSkew = guard
	return e
}

// Apply implements replica.State. Ops:
//
//	append(payload)         append an entry
//	appendFuture(payload, clock) forge a far-future entry (issue #512 seed)
//	read()                  -> comma-joined linearized payloads
//	verify()                -> "ok" or the list of corrupt entry hashes
//	flush()                 release the repo lock
//	close()                 close the repo
//	reopen()                reopen the repo
//	clockBelow(limit)       -> "ok" if the clock is under limit
func (d *DB) Apply(op replica.Op) (string, error) {
	switch op.Name {
	case "read", "verify", "clockBelow":
	default:
		d.ver++
	}
	switch op.Name {
	case "append":
		if err := d.Append(op.Args[0]); err != nil {
			return "", err
		}
		return "", nil
	case "appendFuture":
		var clock uint64
		if _, err := fmt.Sscanf(op.Args[1], "%d", &clock); err != nil {
			return "", fmt.Errorf("orbit: bad clock: %w", err)
		}
		d.AppendWithClock(op.Args[0], clock)
		return "", nil
	case "read":
		return strings.Join(d.Read(), ","), nil
	case "verify":
		return d.verifyAll(), nil
	case "flush":
		d.Flush()
		return "", nil
	case "seal":
		d.Seal()
		return "", nil
	case "close":
		d.Close()
		return "", nil
	case "reopen":
		if err := d.Reopen(); err != nil {
			return "", replica.ErrFailedOp
		}
		return "reopened", nil
	case "clockBelow":
		var limit uint64
		if _, err := fmt.Sscanf(op.Args[0], "%d", &limit); err != nil {
			return "", fmt.Errorf("orbit: bad limit: %w", err)
		}
		if d.log.Clock() < limit {
			return "ok", nil
		}
		return fmt.Sprintf("clock=%d", d.log.Clock()), nil
	default:
		return "", fmt.Errorf("orbit: unknown op %s", op.Name)
	}
}

func (d *DB) verifyAll() string {
	var bad []string
	for _, e := range d.log.Entries() {
		if !e.Verify() {
			bad = append(bad, e.Hash[:8])
		}
	}
	if len(bad) == 0 {
		return "ok"
	}
	sort.Strings(bad)
	return "corrupt:" + strings.Join(bad, ",")
}

// SyncPayload implements replica.State: every entry of the DAG. With
// BugMutateAfterHash an UNSEALED newest local entry is annotated after
// hashing, so the receiver sees a head whose hash doesn't match (issue
// #583) — but only in interleavings where the sync overtakes the seal.
func (d *DB) SyncPayload() ([]byte, error) {
	entries := d.log.Entries()
	if d.flags.BugMutateAfterHash && d.lastHash != "" && !d.sealed {
		d.ver++ // the annotation below mutates entries in place
		for _, e := range entries {
			if e.Hash == d.lastHash && !strings.HasSuffix(e.Payload, "#synced") {
				e.Payload += "#synced" // mutated after hashing: hash now stale
			}
		}
	}
	return json.Marshal(entries)
}

// ApplySync implements replica.State: join the remote entries. Entries
// failing verification poison the join (surfaced as a failed op so the
// replay records it); far-future clocks are rejected unless BugFutureClock
// disabled the guard.
func (d *DB) ApplySync(payload []byte) error {
	d.ver++
	var entries []*merkle.Entry
	if err := json.Unmarshal(payload, &entries); err != nil {
		return fmt.Errorf("orbit: sync payload: %w", err)
	}
	if err := d.log.Join(entries); err != nil {
		return replica.ErrFailedOp
	}
	return nil
}

type snapshot struct {
	Entries    []*merkle.Entry `json:"entries"`
	HeadCache  []string        `json:"head_cache,omitempty"`
	RepoLocked bool            `json:"repo_locked"`
	Dirty      bool            `json:"dirty"`
	Open       bool            `json:"open"`
	LastHash   string          `json:"last_hash,omitempty"`
	Sealed     bool            `json:"sealed"`
}

// Snapshot implements replica.State. With the correct tie-breaker the
// DAG's local arrival order is incidental (linearization uses clock,
// identity, and hash), so entries are serialized in canonical
// (Clock, Identity, Hash) order — equal logical states snapshot to equal
// bytes. With BugTieBreaker arrival order IS behavior (issue #513) and is
// kept verbatim so a Restore(Snapshot()) round trip replays faithfully.
func (d *DB) Snapshot() ([]byte, error) {
	entries := d.log.Entries()
	if !d.flags.BugTieBreaker {
		sort.Slice(entries, func(i, j int) bool {
			a, b := entries[i], entries[j]
			if a.Clock != b.Clock {
				return a.Clock < b.Clock
			}
			if a.Identity != b.Identity {
				return a.Identity < b.Identity
			}
			return a.Hash < b.Hash
		})
	}
	return json.Marshal(snapshot{
		Entries:    entries,
		HeadCache:  d.headCache,
		RepoLocked: d.repoLocked,
		Dirty:      d.dirty,
		Open:       d.open,
		LastHash:   d.lastHash,
		Sealed:     d.sealed,
	})
}

// Restore implements replica.State.
func (d *DB) Restore(data []byte) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("orbit: snapshot: %w", err)
	}
	fresh := New(d.identity, d.flags)
	// Bypass guards while restoring our own checkpoint.
	skew := fresh.log.MaxClockSkew
	fresh.log.MaxClockSkew = 0
	if err := fresh.log.Join(snap.Entries); err != nil {
		return fmt.Errorf("orbit: snapshot join: %w", err)
	}
	fresh.log.MaxClockSkew = skew
	fresh.headCache = snap.HeadCache
	fresh.repoLocked = snap.RepoLocked
	fresh.dirty = snap.Dirty
	fresh.open = snap.Open
	fresh.lastHash = snap.LastHash
	fresh.sealed = snap.Sealed
	ver := d.ver + 1
	*d = *fresh
	d.ver = ver
	return nil
}

// Fingerprint implements replica.State: the linearized payloads plus
// integrity and lock status.
func (d *DB) Fingerprint() string {
	return strings.Join(d.Read(), ",") + "|" + d.verifyAll()
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
