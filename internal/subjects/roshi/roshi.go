// Package roshi re-implements the replication core of SoundCloud's Roshi
// (evaluation subject 1): a time-series event index with last-write-wins
// CRDT semantics. Keys map to sets of (member, score) pairs; inserts and
// deletes carry scores (timestamps), and the higher score wins. Selects
// return members by descending score with a "deleted" response field —
// the field at the heart of Roshi issue #18.
//
// Three seedable defects reproduce the paper's Roshi bug benchmarks:
//
//   - BugDeletedField (issue #18, "incorrect deleted field in response"):
//     a re-add at the same score as a prior delete keeps reporting the
//     member as deleted.
//   - BugEqualTimestampArrival (issue #11, "CRDT semantics violated if
//     same timestamp"): equal-score conflicts resolve by arrival order
//     instead of deterministically, so replicas diverge by interleaving.
//   - BugMapOrder (issue #40, "select and map order"): equal-score members
//     are returned in internal map-arrival order rather than a canonical
//     order, so reads are interleaving-dependent.
package roshi

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/er-pi/erpi/internal/replica"
)

// Flags seed the known defects.
type Flags struct {
	BugDeletedField          bool `json:"bug_deleted_field"`
	BugEqualTimestampArrival bool `json:"bug_equal_timestamp_arrival"`
	BugMapOrder              bool `json:"bug_map_order"`
	// ArrivalWins disables LWW conflict resolution entirely: the latest
	// applied record wins regardless of score. This seeds misconception #1
	// ("the underlying network ensures causal delivery") — application
	// code that skips the resolution step depends on arrival order.
	ArrivalWins bool `json:"arrival_wins"`
}

// record is one member's LWW state within a key.
type record struct {
	Member string `json:"member"`
	// Score is the logical timestamp of the winning operation.
	Score uint64 `json:"score"`
	// Deleted reports whether the winning operation was a delete.
	Deleted bool `json:"deleted"`
	// Arrival is a per-store application counter used (only) by the seeded
	// arrival-order and map-order defects.
	Arrival int `json:"arrival"`
}

// Store is one replica of the Roshi index.
type Store struct {
	flags   Flags
	keys    map[string]map[string]*record
	arrival int
	// ver counts mutations for snapshot-cache invalidation
	// (replica.Versioned); selects are pure and leave it untouched.
	ver uint64
}

var (
	_ replica.State     = (*Store)(nil)
	_ replica.Versioned = (*Store)(nil)
)

// StateVersion implements replica.Versioned.
func (s *Store) StateVersion() uint64 { return s.ver }

// New returns an empty store with the given defect flags.
func New(flags Flags) *Store {
	return &Store{flags: flags, keys: make(map[string]map[string]*record)}
}

// Insert applies an add of member to key at the given score.
func (s *Store) Insert(key, member string, score uint64) {
	s.apply(key, member, score, false)
}

// Delete applies a delete of member from key at the given score.
func (s *Store) Delete(key, member string, score uint64) {
	s.apply(key, member, score, true)
}

func (s *Store) apply(key, member string, score uint64, deleted bool) {
	s.ver++
	recs, ok := s.keys[key]
	if !ok {
		recs = make(map[string]*record)
		s.keys[key] = recs
	}
	s.arrival++
	if s.flags.ArrivalWins {
		// Misconception #1 seed: no resolution, last arrival wins.
		recs[member] = &record{Member: member, Score: score, Deleted: deleted, Arrival: s.arrival}
		return
	}
	cur, ok := recs[member]
	if !ok {
		del := deleted
		if s.flags.BugDeletedField && deleted {
			// Defect (issue #18): the code path creating a record for a
			// not-yet-known member forgets to set the deleted field, so a
			// tombstone that syncs in before its insert is recorded as
			// live. The wrong field value then wins LWW resolution against
			// the older insert — but only in interleavings where the
			// delete overtakes the insert.
			del = false
		}
		recs[member] = &record{Member: member, Score: score, Deleted: del, Arrival: s.arrival}
		return
	}
	switch {
	case score > cur.Score:
		cur.Score, cur.Deleted, cur.Arrival = score, deleted, s.arrival
	case score == cur.Score:
		if s.flags.BugEqualTimestampArrival {
			// Defect: last arrival wins, so the winner depends on the
			// interleaving (issue #11).
			cur.Deleted, cur.Arrival = deleted, s.arrival
			return
		}
		// Correct resolution: deletes win score ties (Roshi's documented
		// semantics after issue #11), deterministically.
		if deleted && !cur.Deleted {
			cur.Deleted = true
			cur.Arrival = s.arrival
		}
	}
}

// SelectEntry is one row of a Select response.
type SelectEntry struct {
	Member  string `json:"member"`
	Score   uint64 `json:"score"`
	Deleted bool   `json:"deleted"`
}

// Select returns the key's live entries (and, when includeDeleted is set,
// tombstones) ordered by descending score.
func (s *Store) Select(key string, includeDeleted bool) []SelectEntry {
	recs := s.keys[key]
	rows := make([]*record, 0, len(recs))
	for _, r := range recs {
		if r.Deleted && !includeDeleted {
			continue
		}
		rows = append(rows, r)
	}
	if s.flags.BugMapOrder {
		// Defect: equal scores keep map-arrival order (issue #40).
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].Score != rows[j].Score {
				return rows[i].Score > rows[j].Score
			}
			return rows[i].Arrival < rows[j].Arrival
		})
	} else {
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].Score != rows[j].Score {
				return rows[i].Score > rows[j].Score
			}
			return rows[i].Member < rows[j].Member
		})
	}
	out := make([]SelectEntry, len(rows))
	for i, r := range rows {
		out[i] = SelectEntry{Member: r.Member, Score: r.Score, Deleted: r.Deleted}
	}
	return out
}

// Apply implements replica.State. Ops:
//
//	insert(key, member, score)
//	delete(key, member, score)
//	select(key)            -> "member@score[,deleted]..." live rows
//	selectAll(key)         -> rows including tombstones with deleted flags
func (s *Store) Apply(op replica.Op) (string, error) {
	switch op.Name {
	case "insert":
		score, err := strconv.ParseUint(op.Args[2], 10, 64)
		if err != nil {
			return "", fmt.Errorf("roshi: bad score: %w", err)
		}
		s.Insert(op.Args[0], op.Args[1], score)
		return "", nil
	case "delete":
		score, err := strconv.ParseUint(op.Args[2], 10, 64)
		if err != nil {
			return "", fmt.Errorf("roshi: bad score: %w", err)
		}
		// Roshi's LWW semantics accept deletes of not-yet-known members:
		// the tombstone is recorded and wins or loses by score later.
		s.Delete(op.Args[0], op.Args[1], score)
		return "", nil
	case "select":
		return renderEntries(s.Select(op.Args[0], false)), nil
	case "selectAll":
		return renderEntries(s.Select(op.Args[0], true)), nil
	default:
		return "", fmt.Errorf("roshi: unknown op %s", op.Name)
	}
}

func renderEntries(entries []SelectEntry) string {
	parts := make([]string, len(entries))
	for i, e := range entries {
		parts[i] = fmt.Sprintf("%s@%d", e.Member, e.Score)
		if e.Deleted {
			parts[i] += ":deleted"
		}
	}
	return strings.Join(parts, ",")
}

// syncRecord is the wire form of one record.
type syncRecord struct {
	Key     string `json:"key"`
	Member  string `json:"member"`
	Score   uint64 `json:"score"`
	Deleted bool   `json:"deleted"`
}

// SyncPayload implements replica.State: the full record table.
func (s *Store) SyncPayload() ([]byte, error) {
	var recs []syncRecord
	for key, members := range s.keys {
		for _, r := range members {
			recs = append(recs, syncRecord{Key: key, Member: r.Member, Score: r.Score, Deleted: r.Deleted})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Key != recs[j].Key {
			return recs[i].Key < recs[j].Key
		}
		return recs[i].Member < recs[j].Member
	})
	return json.Marshal(recs)
}

// ApplySync implements replica.State: merge the remote records through the
// same LWW resolution as local ops.
func (s *Store) ApplySync(payload []byte) error {
	var recs []syncRecord
	if err := json.Unmarshal(payload, &recs); err != nil {
		return fmt.Errorf("roshi: sync payload: %w", err)
	}
	for _, r := range recs {
		s.apply(r.Key, r.Member, r.Score, r.Deleted)
	}
	return nil
}

// storeSnapshot is the checkpoint form of a store. Unlike the sync wire
// form it carries the per-record Arrival order and the arrival counter:
// the seeded arrival-order and map-order defects read them, so a
// checkpoint that dropped them would change behavior across a
// Restore(Snapshot()) round trip (the fidelity the prefix cache relies
// on — see replica.State).
type storeSnapshot struct {
	Keys    map[string]map[string]*record `json:"keys"`
	Arrival int                           `json:"arrival"`
}

// arrivalMatters reports whether any seeded defect reads the arrival
// bookkeeping. When none does, Arrival values are incidental to behavior
// and must not leak into the snapshot encoding — equal logical states
// reached through different interleavings would otherwise serialize
// differently, defeating snapshot-hash state subsumption.
func (s *Store) arrivalMatters() bool {
	return s.flags.ArrivalWins || s.flags.BugEqualTimestampArrival || s.flags.BugMapOrder
}

// Snapshot implements replica.State: a dump of the record table. Arrival
// bookkeeping is carried only when a seeded defect reads it (a checkpoint
// that dropped it would then change behavior across a Restore(Snapshot())
// round trip); otherwise it is normalized to zero so the encoding is
// canonical. Map keys serialize sorted (encoding/json), so no explicit
// ordering is needed.
func (s *Store) Snapshot() ([]byte, error) {
	if s.arrivalMatters() {
		return json.Marshal(storeSnapshot{Keys: s.keys, Arrival: s.arrival})
	}
	norm := make(map[string]map[string]*record, len(s.keys))
	for key, members := range s.keys {
		ms := make(map[string]*record, len(members))
		for m, r := range members {
			cp := *r
			cp.Arrival = 0
			ms[m] = &cp
		}
		norm[key] = ms
	}
	return json.Marshal(storeSnapshot{Keys: norm})
}

// Restore implements replica.State.
func (s *Store) Restore(snapshot []byte) error {
	var snap storeSnapshot
	if err := json.Unmarshal(snapshot, &snap); err != nil {
		return fmt.Errorf("roshi: snapshot: %w", err)
	}
	s.ver++
	s.keys = snap.Keys
	if s.keys == nil {
		s.keys = make(map[string]map[string]*record)
	}
	s.arrival = snap.Arrival
	return nil
}

// Fingerprint implements replica.State: canonical live membership with
// deleted flags, so both membership and response-field defects surface.
func (s *Store) Fingerprint() string {
	keys := make([]string, 0, len(s.keys))
	for k := range s.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s{%s}", k, renderEntries(s.Select(k, true)))
	}
	return b.String()
}
