package roshi

import (
	"strings"
	"testing"

	"github.com/er-pi/erpi/internal/replica"
)

func TestInsertSelect(t *testing.T) {
	s := New(Flags{})
	s.Insert("feed", "a", 3)
	s.Insert("feed", "b", 5)
	rows := s.Select("feed", false)
	if len(rows) != 2 || rows[0].Member != "b" || rows[1].Member != "a" {
		t.Fatalf("Select = %+v, want descending score", rows)
	}
}

func TestDeleteWinsNewerScore(t *testing.T) {
	s := New(Flags{})
	s.Insert("k", "m", 5)
	s.Delete("k", "m", 7)
	if rows := s.Select("k", false); len(rows) != 0 {
		t.Fatalf("deleted member still live: %+v", rows)
	}
	rows := s.Select("k", true)
	if len(rows) != 1 || !rows[0].Deleted {
		t.Fatalf("tombstone missing: %+v", rows)
	}
	// Older insert does not resurrect.
	s.Insert("k", "m", 6)
	if rows := s.Select("k", false); len(rows) != 0 {
		t.Fatalf("stale insert resurrected member: %+v", rows)
	}
}

func TestEqualScoreDeterministicWithoutBug(t *testing.T) {
	// Two stores apply the same equal-score ops in opposite orders and
	// must agree: deletes win ties.
	a, b := New(Flags{}), New(Flags{})
	a.Insert("k", "m", 5)
	a.Delete("k", "m", 5)
	b.Delete("k", "m", 5)
	b.Insert("k", "m", 5)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("equal-score resolution order-dependent: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	if rows := a.Select("k", false); len(rows) != 0 {
		t.Fatalf("delete must win the tie, got %+v", rows)
	}
}

func TestBugEqualTimestampArrivalDiverges(t *testing.T) {
	flags := Flags{BugEqualTimestampArrival: true}
	a, b := New(flags), New(flags)
	a.Insert("k", "m", 5)
	a.Delete("k", "m", 5)
	b.Delete("k", "m", 5)
	b.Insert("k", "m", 5)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("seeded issue #11 must make equal-score resolution arrival-dependent")
	}
}

func TestBugDeletedFieldTombstoneFirst(t *testing.T) {
	// Correct store: a delete arriving before its insert leaves the member
	// dead.
	good := New(Flags{})
	good.Delete("k", "m", 9)
	good.Insert("k", "m", 5)
	if len(good.Select("k", false)) != 0 {
		t.Fatal("correct store must keep the member dead")
	}
	// Buggy store: the tombstone-first path forgets the deleted field, so
	// the member appears live (issue #18).
	bad := New(Flags{BugDeletedField: true})
	bad.Delete("k", "m", 9)
	bad.Insert("k", "m", 5)
	if len(bad.Select("k", false)) != 1 {
		t.Fatal("seeded issue #18 must surface the member as live")
	}
}

func TestBugMapOrderArrivalDependent(t *testing.T) {
	flags := Flags{BugMapOrder: true}
	a, b := New(flags), New(flags)
	// Same score, applied in opposite orders.
	a.Insert("k", "x", 5)
	a.Insert("k", "y", 5)
	b.Insert("k", "y", 5)
	b.Insert("k", "x", 5)
	ra := renderEntries(a.Select("k", false))
	rb := renderEntries(b.Select("k", false))
	if ra == rb {
		t.Fatal("seeded issue #40 must make equal-score order arrival-dependent")
	}
	// Without the bug the order is canonical.
	ga, gb := New(Flags{}), New(Flags{})
	ga.Insert("k", "x", 5)
	ga.Insert("k", "y", 5)
	gb.Insert("k", "y", 5)
	gb.Insert("k", "x", 5)
	if renderEntries(ga.Select("k", false)) != renderEntries(gb.Select("k", false)) {
		t.Fatal("correct store must order equal scores canonically")
	}
}

func TestApplyOps(t *testing.T) {
	s := New(Flags{})
	if _, err := s.Apply(replica.Op{Name: "insert", Args: []string{"k", "m", "5"}}); err != nil {
		t.Fatal(err)
	}
	out, err := s.Apply(replica.Op{Name: "select", Args: []string{"k"}})
	if err != nil || out != "m@5" {
		t.Fatalf("select = %q, %v", out, err)
	}
	// LWW semantics: a delete of a not-yet-known member records a
	// tombstone rather than failing.
	if _, err := s.Apply(replica.Op{Name: "delete", Args: []string{"k", "ghost", "9"}}); err != nil {
		t.Fatalf("delete of unknown member = %v, want tombstone", err)
	}
	if out, _ := s.Apply(replica.Op{Name: "selectAll", Args: []string{"k"}}); !strings.Contains(out, "ghost@9:deleted") {
		t.Fatalf("tombstone missing: %q", out)
	}
	if _, err := s.Apply(replica.Op{Name: "delete", Args: []string{"k", "m", "9"}}); err != nil {
		t.Fatal(err)
	}
	out, err = s.Apply(replica.Op{Name: "selectAll", Args: []string{"k"}})
	if err != nil || !strings.Contains(out, "deleted") {
		t.Fatalf("selectAll = %q, %v", out, err)
	}
	if _, err := s.Apply(replica.Op{Name: "nope"}); err == nil {
		t.Fatal("unknown op must fail")
	}
}

func TestSyncConvergence(t *testing.T) {
	a, b := New(Flags{}), New(Flags{})
	a.Insert("k", "x", 3)
	b.Insert("k", "y", 4)
	b.Delete("k", "y", 6)
	pa, err := a.SyncPayload()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.SyncPayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ApplySync(pb); err != nil {
		t.Fatal(err)
	}
	if err := b.ApplySync(pa); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("divergence after mutual sync: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New(Flags{})
	s.Insert("k", "m", 5)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s.Insert("k", "extra", 9)
	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if rows := s.Select("k", false); len(rows) != 1 || rows[0].Member != "m" {
		t.Fatalf("restore lost state: %+v", rows)
	}
}
