package interleave

import (
	"math/rand"
)

// Filter decides which unit permutations survive pruning. ER-π's pruning
// rules merge equivalence classes of interleavings; a Filter implements the
// merge by accepting exactly one canonical representative per class.
type Filter interface {
	// Name identifies the rule (used in ablation reports).
	Name() string
	// Canonical reports whether perm is the canonical representative of its
	// equivalence class. When it is not, prefixLen may name the length of
	// the shortest prefix that already rules out canonicity, letting the
	// explorer skip the whole subtree of permutations sharing that prefix;
	// prefixLen == 0 means "unknown, skip only this permutation".
	Canonical(perm []int) (ok bool, prefixLen int)
}

// IncrementalFilter is an optional Filter extension for filters whose
// canonicity test is a prefix scan. CanonicalFrom(perm, from) must return
// exactly what Canonical(perm) would, but may assume perm[:from] is
// unchanged since this instance's previous CanonicalFrom call, reusing
// any per-prefix state it kept (from == 0 makes no assumption and
// rebuilds everything). Lexicographic enumeration advances permutations
// mostly near the tail, so the DFS explorer tracks the first index it
// changed since each filter last ran and hands it in as from, turning the
// per-permutation filter cost from O(n) into O(n - from) amortized.
//
// Implementations are stateful and therefore not safe for concurrent use
// or for sharing between explorers; calls to the plain Canonical must not
// disturb the incremental state.
type IncrementalFilter interface {
	Filter
	CanonicalFrom(perm []int, from int) (ok bool, prefixLen int)
}

// Explorer yields interleavings one at a time.
type Explorer interface {
	// Next returns the next interleaving, or ok=false when the space is
	// exhausted.
	Next() (Interleaving, bool)
	// Explored returns how many interleavings have been yielded so far.
	Explored() int
	// Mode names the exploration strategy ("erpi", "dfs", "rand").
	Mode() string
}

// DFSExplorer enumerates unit permutations in lexicographic depth-first
// order, optionally skipping permutations rejected by pruning filters.
// This implements both the paper's plain-DFS baseline (no filters, one
// event per unit) and ER-π's pruned exploration (grouped units + filters).
type DFSExplorer struct {
	space    *Space
	filters  []Filter
	inc      []IncrementalFilter // inc[i] is filters[i] or nil (parallel)
	dirty    []int               // per filter: first index changed since it last ran
	perm     []int
	done     bool
	started  bool
	explored int
	mode     string
}

var _ Explorer = (*DFSExplorer)(nil)

// NewDFS returns the plain exhaustive DFS baseline over the space.
func NewDFS(space *Space) *DFSExplorer {
	return &DFSExplorer{space: space, perm: identityPerm(space.NumUnits()), mode: "dfs"}
}

// NewPruned returns ER-π's pruned explorer: DFS over units yielding only
// permutations accepted as canonical by every filter.
func NewPruned(space *Space, filters ...Filter) *DFSExplorer {
	d := &DFSExplorer{
		space:   space,
		filters: filters,
		inc:     make([]IncrementalFilter, len(filters)),
		dirty:   make([]int, len(filters)), // zero: nothing validated yet
		perm:    identityPerm(space.NumUnits()),
		mode:    "erpi",
	}
	for i, f := range filters {
		if incf, ok := f.(IncrementalFilter); ok {
			d.inc[i] = incf
		}
	}
	return d
}

// Mode implements Explorer.
func (d *DFSExplorer) Mode() string { return d.mode }

// Explored implements Explorer.
func (d *DFSExplorer) Explored() int { return d.explored }

// Next implements Explorer.
func (d *DFSExplorer) Next() (Interleaving, bool) {
	for {
		if d.done {
			return nil, false
		}
		if d.started {
			changed, ok := nextPermutation(d.perm)
			if !ok {
				d.done = true
				return nil, false
			}
			d.touched(changed)
		}
		d.started = true
		if skip, prefix := d.rejected(); skip {
			if prefix > 0 && prefix < len(d.perm) {
				changed, ok := skipPrefix(d.perm, prefix)
				if !ok {
					d.done = true
					return nil, false
				}
				d.touched(changed)
				// skipPrefix already advanced to a fresh permutation;
				// re-evaluate it without another nextPermutation step.
				d.started = false
			}
			continue
		}
		d.explored++
		return d.space.Flatten(d.perm), true
	}
}

// PivotExplorer is implemented by explorers that can predict where their
// next yield will diverge from the current one, letting a prefix cache
// snapshot exactly where the next lookup lands.
type PivotExplorer interface {
	// NextPivot returns the event depth of the longest prefix the most
	// recently yielded interleaving shares with the next one the explorer
	// will yield, or -1 when unknown (not started, exhausted, or the
	// strategy is non-sequential). The value is an upper bound: pruning
	// filters may reject the immediate successor and push the real
	// divergence shallower.
	NextPivot() int
}

var _ PivotExplorer = (*DFSExplorer)(nil)

// NextPivot implements PivotExplorer for lexicographic enumeration: the
// next permutation changes the current one from its rightmost ascent
// onward, so the shared prefix is exactly the units before that pivot,
// converted to an event depth.
func (d *DFSExplorer) NextPivot() int {
	if !d.started || d.done {
		return -1
	}
	// Rightmost ascent scan, mirroring nextPermutation without mutating.
	i := len(d.perm) - 2
	for i >= 0 && d.perm[i] >= d.perm[i+1] {
		i--
	}
	if i < 0 {
		return -1 // current permutation is the last one
	}
	units := d.space.Units()
	depth := 0
	for _, ui := range d.perm[:i] {
		depth += len(units[ui].Events)
	}
	return depth
}

// Perm returns a copy of the current unit permutation (the one most
// recently yielded). Only meaningful after a successful Next.
func (d *DFSExplorer) Perm() []int {
	out := make([]int, len(d.perm))
	copy(out, d.perm)
	return out
}

// touched records that perm[changed:] may differ from what each filter
// last validated. Filters the current rejected() pass never reached keep
// accumulating the minimum, so their next evaluation rescans far enough.
func (d *DFSExplorer) touched(changed int) {
	for i := range d.dirty {
		if changed < d.dirty[i] {
			d.dirty[i] = changed
		}
	}
}

func (d *DFSExplorer) rejected() (skip bool, prefixLen int) {
	for fi, f := range d.filters {
		var ok bool
		var prefix int
		if incf := d.inc[fi]; incf != nil {
			ok, prefix = incf.CanonicalFrom(d.perm, d.dirty[fi])
			// The filter's prefix state now covers the whole permutation,
			// whether it accepted or rejected.
			d.dirty[fi] = len(d.perm)
		} else {
			ok, prefix = f.Canonical(d.perm)
		}
		if !ok {
			return true, prefix
		}
	}
	return false, 0
}

// RandExplorer yields uniformly random interleavings without repetition,
// the paper's Rand baseline. It keeps a cache of already-produced
// permutation keys; the repeated shuffling needed to escape the cache is
// what makes Rand the slowest mode in the paper's Figure 8b.
type RandExplorer struct {
	space    *Space
	rng      *rand.Rand
	seen     map[string]struct{}
	perm     []int
	explored int
	shuffles int
	// maxRetries bounds consecutive duplicate shuffles before the explorer
	// declares the space (effectively) exhausted.
	maxRetries int
}

var _ Explorer = (*RandExplorer)(nil)

// DefaultRandRetries is the consecutive-duplicate bound after which the
// random explorer gives up.
const DefaultRandRetries = 100000

// NewRand returns the Rand baseline explorer with a deterministic seed.
func NewRand(space *Space, seed int64) *RandExplorer {
	return &RandExplorer{
		space:      space,
		rng:        rand.New(rand.NewSource(seed)),
		seen:       make(map[string]struct{}),
		perm:       identityPerm(space.NumUnits()),
		maxRetries: DefaultRandRetries,
	}
}

// Mode implements Explorer.
func (r *RandExplorer) Mode() string { return "rand" }

// Explored implements Explorer.
func (r *RandExplorer) Explored() int { return r.explored }

// Shuffles returns the total number of shuffle attempts, including the
// duplicates discarded by the cache. The excess over Explored measures the
// wasted work the paper attributes to Rand.
func (r *RandExplorer) Shuffles() int { return r.shuffles }

// CacheSize returns the number of cached interleaving keys; the resource
// that the succeed-or-crash micro-benchmark (paper Fig. 10) exhausts.
func (r *RandExplorer) CacheSize() int { return len(r.seen) }

// Next implements Explorer.
func (r *RandExplorer) Next() (Interleaving, bool) {
	// A space of n units has n! permutations; once all are seen, only
	// duplicates remain. size guards exact exhaustion for small spaces.
	size := r.space.Size()
	for attempt := 0; attempt < r.maxRetries; attempt++ {
		if size.IsInt64() && int64(len(r.seen)) >= size.Int64() {
			return nil, false
		}
		r.shuffles++
		r.rng.Shuffle(len(r.perm), func(i, j int) {
			r.perm[i], r.perm[j] = r.perm[j], r.perm[i]
		})
		il := r.space.Flatten(r.perm)
		key := il.Key()
		if _, dup := r.seen[key]; dup {
			continue
		}
		r.seen[key] = struct{}{}
		r.explored++
		return il, true
	}
	return nil, false
}

// Collect drains up to limit interleavings from an explorer. A limit of 0
// drains the explorer completely (use only on small spaces).
func Collect(e Explorer, limit int) []Interleaving {
	var out []Interleaving
	for {
		il, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, il)
		if limit > 0 && len(out) >= limit {
			return out
		}
	}
}
