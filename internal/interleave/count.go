package interleave

import (
	"math/big"
	"math/rand"
)

// CountResult reports how many interleavings of a space survive a set of
// pruning filters.
type CountResult struct {
	// Total is the unpruned size of the space, (#units)!.
	Total *big.Int
	// Surviving is the number of canonical interleavings. Exact when Exact
	// is true, otherwise a sampling estimate.
	Surviving *big.Int
	// Exact reports whether Surviving was obtained by full enumeration.
	Exact bool
	// SampleSize is the number of random permutations drawn when estimating.
	SampleSize int
}

// ReductionFactor returns Total/Surviving as a float, the "problem-space
// reduction" metric of the paper's §2.3 and Figure 9. Returns +Inf-like
// large value guard of 0 when Surviving is zero.
func (c CountResult) ReductionFactor() float64 {
	if c.Surviving.Sign() == 0 {
		return 0
	}
	t := new(big.Float).SetInt(c.Total)
	s := new(big.Float).SetInt(c.Surviving)
	f, _ := new(big.Float).Quo(t, s).Float64()
	return f
}

// exactEnumerationLimit is the largest unit count for which Count fully
// enumerates the permutation space (10! = 3,628,800).
const exactEnumerationLimit = 10

// Count computes how many interleavings survive the filters. Spaces of at
// most exactEnumerationLimit units are enumerated exactly; larger spaces
// are estimated from sampleSize uniformly random permutations (the paper's
// Figure 9 reports reduction factors, for which sampling suffices).
func Count(space *Space, filters []Filter, sampleSize int, seed int64) CountResult {
	total := space.Size()
	n := space.NumUnits()
	if n <= exactEnumerationLimit {
		return CountResult{Total: total, Surviving: countExact(n, filters), Exact: true}
	}
	return CountResult{
		Total:      total,
		Surviving:  countSampled(n, filters, sampleSize, seed, total),
		SampleSize: sampleSize,
	}
}

func countExact(n int, filters []Filter) *big.Int {
	perm := identityPerm(n)
	count := int64(0)
	for {
		if canonicalAll(perm, filters) {
			count++
		}
		if _, ok := nextPermutation(perm); !ok {
			return big.NewInt(count)
		}
	}
}

func countSampled(n int, filters []Filter, sampleSize int, seed int64, total *big.Int) *big.Int {
	if sampleSize <= 0 {
		sampleSize = 100000
	}
	rng := rand.New(rand.NewSource(seed))
	perm := identityPerm(n)
	accepted := 0
	for i := 0; i < sampleSize; i++ {
		rng.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		if canonicalAll(perm, filters) {
			accepted++
		}
	}
	est := new(big.Int).Mul(total, big.NewInt(int64(accepted)))
	return est.Div(est, big.NewInt(int64(sampleSize)))
}

func canonicalAll(perm []int, filters []Filter) bool {
	for _, f := range filters {
		if ok, _ := f.Canonical(perm); !ok {
			return false
		}
	}
	return true
}
