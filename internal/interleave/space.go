// Package interleave represents and enumerates the interleavings of
// distributed events that ER-π replays.
//
// The package works over units: a unit is either a single event or a group
// of events whose internal order is fixed (produced by the Event Grouping
// pruning, paper Algorithm 1). An interleaving is a permutation of units,
// flattened back into a sequence of event IDs for replay.
//
// Enumeration is lazy. The exhaustive search spaces of the paper's
// evaluation reach 24 events (24! ≈ 6.2·10^23 interleavings), so explorers
// are iterators that produce one interleaving at a time: a lexicographic
// depth-first iterator (the paper's DFS baseline), a random-shuffle
// iterator with a dedup cache (the Rand baseline), and a filtered iterator
// that yields only the canonical representatives surviving ER-π's pruning
// rules.
package interleave

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"github.com/er-pi/erpi/internal/event"
)

// Unit is an atomic schedulable element: one event or a grouped run of
// events whose relative order is fixed.
type Unit struct {
	// Events are the member event IDs in their fixed internal order.
	Events []event.ID
}

// Label renders a unit as "3" or "(3 4)".
func (u Unit) Label() string {
	if len(u.Events) == 1 {
		return fmt.Sprintf("%d", int(u.Events[0]))
	}
	parts := make([]string, len(u.Events))
	for i, id := range u.Events {
		parts[i] = fmt.Sprintf("%d", int(id))
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// Interleaving is a complete ordering of all recorded events.
type Interleaving []event.ID

// Key returns a compact string identity usable as a map key and as the
// Datalog fact key for the interleaving.
func (il Interleaving) Key() string {
	var b strings.Builder
	b.Grow(len(il) * 3)
	for i, id := range il {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", int(id))
	}
	return b.String()
}

// Equal reports whether two interleavings order the same events identically.
func (il Interleaving) Equal(other Interleaving) bool {
	if len(il) != len(other) {
		return false
	}
	for i := range il {
		if il[i] != other[i] {
			return false
		}
	}
	return true
}

// Space is the permutation space over a recorded event log partitioned into
// units.
type Space struct {
	log   *event.Log
	units []Unit
}

// NewSpace builds a space in which every event is its own unit (the
// ungrouped space used by the DFS and Rand baselines).
func NewSpace(log *event.Log) *Space {
	units := make([]Unit, log.Len())
	for i := 0; i < log.Len(); i++ {
		units[i] = Unit{Events: []event.ID{event.ID(i)}}
	}
	return &Space{log: log, units: units}
}

// NewGroupedSpace builds a space from explicit units. Every event of the
// log must appear in exactly one unit.
func NewGroupedSpace(log *event.Log, units []Unit) (*Space, error) {
	seen := make(map[event.ID]bool, log.Len())
	for _, u := range units {
		if len(u.Events) == 0 {
			return nil, fmt.Errorf("interleave: empty unit")
		}
		for _, id := range u.Events {
			if int(id) < 0 || int(id) >= log.Len() {
				return nil, fmt.Errorf("interleave: unit references unknown event %d", id)
			}
			if seen[id] {
				return nil, fmt.Errorf("interleave: event %d appears in two units", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != log.Len() {
		return nil, fmt.Errorf("interleave: units cover %d of %d events", len(seen), log.Len())
	}
	cp := make([]Unit, len(units))
	copy(cp, units)
	return &Space{log: log, units: cp}, nil
}

// Log returns the underlying event log.
func (s *Space) Log() *event.Log { return s.log }

// Units returns a copy of the unit partition.
func (s *Space) Units() []Unit {
	out := make([]Unit, len(s.units))
	copy(out, s.units)
	return out
}

// NumUnits returns the number of schedulable units.
func (s *Space) NumUnits() int { return len(s.units) }

// Size returns the total number of interleavings in the space, i.e.
// (number of units)!.
func (s *Space) Size() *big.Int {
	return Factorial(len(s.units))
}

// Flatten expands a unit permutation into the event-ID interleaving.
func (s *Space) Flatten(perm []int) Interleaving {
	n := 0
	for _, u := range s.units {
		n += len(u.Events)
	}
	out := make(Interleaving, 0, n)
	for _, ui := range perm {
		out = append(out, s.units[ui].Events...)
	}
	return out
}

// UnitOf returns the index of the unit containing the given event.
func (s *Space) UnitOf(id event.ID) int {
	for i, u := range s.units {
		for _, e := range u.Events {
			if e == id {
				return i
			}
		}
	}
	return -1
}

// UnitTouches reports whether any event of unit ui touches replica r
// (executes at it or delivers into it).
func (s *Space) UnitTouches(ui int, r event.ReplicaID) bool {
	for _, id := range s.units[ui].Events {
		if s.log.Event(id).Touches(r) {
			return true
		}
	}
	return false
}

// Factorial returns n! as a big integer (n! overflows uint64 beyond n=20,
// and the paper's largest benchmark has 24 events).
func Factorial(n int) *big.Int {
	if n < 0 {
		return big.NewInt(0)
	}
	return new(big.Int).MulRange(1, int64(n))
}

// identityPerm returns [0, 1, ..., n-1].
func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// nextPermutation advances p to the next lexicographic permutation,
// returning ok=false when p was the last one (descending order). On
// success, changedFrom is the pivot index: the smallest index whose value
// differs from the previous permutation — p[:changedFrom] is untouched,
// which lets incremental filters reuse prefix scans (see
// IncrementalFilter).
func nextPermutation(p []int) (changedFrom int, ok bool) {
	n := len(p)
	i := n - 2
	for i >= 0 && p[i] >= p[i+1] {
		i--
	}
	if i < 0 {
		return 0, false
	}
	j := n - 1
	for p[j] <= p[i] {
		j--
	}
	p[i], p[j] = p[j], p[i]
	reverse(p[i+1:])
	return i, true
}

// skipPrefix advances p past every permutation sharing p's first `keep`
// positions, returning ok=false when no later permutation exists. keep
// must be in [1, len(p)). On success, changedFrom is the smallest index
// whose value differs from p's value before the call; it is always < keep
// (the whole point is to change the prefix), so the suffix reshuffling
// below never widens it.
func skipPrefix(p []int, keep int) (changedFrom int, ok bool) {
	// Arranging the suffix in descending order makes p the last permutation
	// with this prefix; the next lexicographic step changes the prefix.
	// nextPermutation's pivot scan walks through the now-descending suffix
	// into the prefix, so its changedFrom lands in [0, keep).
	suffix := p[keep:]
	sort.Sort(sort.Reverse(sort.IntSlice(suffix)))
	return nextPermutation(p)
}

func reverse(p []int) {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
}
