package interleave

import (
	"math/big"
	"sort"
	"testing"
	"testing/quick"

	"github.com/er-pi/erpi/internal/event"
)

func testLog(t *testing.T, n int) *event.Log {
	t.Helper()
	evs := make([]event.Event, n)
	for i := range evs {
		r := event.ReplicaID("A")
		if i%2 == 1 {
			r = "B"
		}
		evs[i] = event.Event{Kind: event.Update, Replica: r, Op: "op"}
	}
	log, err := event.NewLog(evs)
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func TestFactorial(t *testing.T) {
	cases := map[int]string{
		0:  "1",
		1:  "1",
		4:  "24",
		7:  "5040",
		10: "3628800",
		24: "620448401733239439360000",
	}
	for n, want := range cases {
		if got := Factorial(n).String(); got != want {
			t.Errorf("Factorial(%d) = %s, want %s", n, got, want)
		}
	}
	if Factorial(-1).Sign() != 0 {
		t.Error("Factorial of negative must be 0")
	}
}

func TestNextPermutationOrderAndCount(t *testing.T) {
	p := identityPerm(4)
	seen := make(map[string]bool)
	prevKey := ""
	count := 0
	for {
		key := Interleaving{event.ID(p[0]), event.ID(p[1]), event.ID(p[2]), event.ID(p[3])}.Key()
		if seen[key] {
			t.Fatalf("duplicate permutation %v", p)
		}
		if key <= prevKey && prevKey != "" && len(key) == len(prevKey) {
			t.Fatalf("non-lexicographic order: %s after %s", key, prevKey)
		}
		seen[key] = true
		prevKey = key
		count++
		if _, ok := nextPermutation(p); !ok {
			break
		}
	}
	if count != 24 {
		t.Fatalf("enumerated %d permutations of 4, want 24", count)
	}
}

func TestSkipPrefix(t *testing.T) {
	// From [0 1 2 3], skipping all perms with prefix [0 1] should land on
	// the first perm with prefix [0 2].
	p := []int{0, 1, 2, 3}
	changed, ok := skipPrefix(p, 2)
	if !ok {
		t.Fatal("skipPrefix returned false with permutations remaining")
	}
	if changed != 1 {
		t.Fatalf("skipPrefix changedFrom = %d, want 1 (p[0] kept, p[1] bumped)", changed)
	}
	want := []int{0, 2, 1, 3}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("skipPrefix result %v, want %v", p, want)
		}
	}
	// Skipping the last prefix exhausts the space.
	p = []int{3, 2, 1, 0}
	if _, ok := skipPrefix(p, 1); ok {
		t.Fatalf("skipPrefix past final prefix should report exhaustion, got %v", p)
	}
}

func TestNewSpaceUngrouped(t *testing.T) {
	log := testLog(t, 5)
	s := NewSpace(log)
	if s.NumUnits() != 5 {
		t.Fatalf("NumUnits = %d, want 5", s.NumUnits())
	}
	if s.Size().Cmp(big.NewInt(120)) != 0 {
		t.Fatalf("Size = %s, want 120", s.Size())
	}
}

func TestNewGroupedSpaceValidation(t *testing.T) {
	log := testLog(t, 4)
	valid := []Unit{{Events: []event.ID{0, 1}}, {Events: []event.ID{2}}, {Events: []event.ID{3}}}
	if _, err := NewGroupedSpace(log, valid); err != nil {
		t.Fatalf("valid units rejected: %v", err)
	}
	cases := []struct {
		name  string
		units []Unit
	}{
		{"empty unit", []Unit{{Events: nil}, {Events: []event.ID{0, 1, 2, 3}}}},
		{"duplicate event", []Unit{{Events: []event.ID{0, 1}}, {Events: []event.ID{1, 2, 3}}}},
		{"missing event", []Unit{{Events: []event.ID{0, 1}}, {Events: []event.ID{2}}}},
		{"unknown event", []Unit{{Events: []event.ID{0, 1, 2, 9}}}},
	}
	for _, tt := range cases {
		if _, err := NewGroupedSpace(log, tt.units); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}

func TestFlattenPreservesUnitOrder(t *testing.T) {
	log := testLog(t, 4)
	s, err := NewGroupedSpace(log, []Unit{
		{Events: []event.ID{2, 3}},
		{Events: []event.ID{0}},
		{Events: []event.ID{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	il := s.Flatten([]int{1, 0, 2})
	want := Interleaving{0, 2, 3, 1}
	if !il.Equal(want) {
		t.Fatalf("Flatten = %v, want %v", il, want)
	}
}

func TestUnitOf(t *testing.T) {
	log := testLog(t, 3)
	s, err := NewGroupedSpace(log, []Unit{
		{Events: []event.ID{1, 2}},
		{Events: []event.ID{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.UnitOf(2) != 0 || s.UnitOf(0) != 1 {
		t.Fatalf("UnitOf wrong: %d %d", s.UnitOf(2), s.UnitOf(0))
	}
	if s.UnitOf(9) != -1 {
		t.Fatal("UnitOf(unknown) should be -1")
	}
}

func TestDFSExplorerExhaustive(t *testing.T) {
	log := testLog(t, 4)
	dfs := NewDFS(NewSpace(log))
	all := Collect(dfs, 0)
	if len(all) != 24 {
		t.Fatalf("DFS yielded %d interleavings of 4 events, want 24", len(all))
	}
	keys := make(map[string]bool)
	for _, il := range all {
		keys[il.Key()] = true
	}
	if len(keys) != 24 {
		t.Fatalf("DFS yielded %d distinct interleavings, want 24", len(keys))
	}
	if dfs.Explored() != 24 {
		t.Fatalf("Explored() = %d, want 24", dfs.Explored())
	}
	if _, ok := dfs.Next(); ok {
		t.Fatal("exhausted explorer must keep returning ok=false")
	}
}

func TestDFSFirstIsRecordingOrder(t *testing.T) {
	log := testLog(t, 5)
	dfs := NewDFS(NewSpace(log))
	il, ok := dfs.Next()
	if !ok {
		t.Fatal("empty explorer")
	}
	if !il.Equal(Interleaving{0, 1, 2, 3, 4}) {
		t.Fatalf("first DFS interleaving = %v, want recording order", il)
	}
}

// oddBeforeEven is a toy filter accepting only permutations where unit 1
// appears before unit 0 — exactly half the space.
type oddBeforeEven struct{}

func (oddBeforeEven) Name() string { return "toy" }
func (oddBeforeEven) Canonical(perm []int) (bool, int) {
	for i, u := range perm {
		switch u {
		case 1:
			return true, 0
		case 0:
			return false, i + 1
		}
	}
	return true, 0
}

func TestPrunedExplorerFilters(t *testing.T) {
	log := testLog(t, 4)
	pruned := NewPruned(NewSpace(log), oddBeforeEven{})
	all := Collect(pruned, 0)
	if len(all) != 12 {
		t.Fatalf("pruned explorer yielded %d, want 12 (half of 24)", len(all))
	}
	for _, il := range all {
		pos := map[event.ID]int{}
		for i, id := range il {
			pos[id] = i
		}
		if pos[1] > pos[0] {
			t.Fatalf("filter violated in %v", il)
		}
	}
}

func TestPrunedMatchesPostFilteredDFS(t *testing.T) {
	// Property: the pruned explorer (with prefix skipping) must yield
	// exactly the interleavings that plain DFS + post-filtering yields, in
	// the same order.
	log := testLog(t, 5)
	space := NewSpace(log)
	pruned := Collect(NewPruned(space, oddBeforeEven{}), 0)
	var reference []Interleaving
	dfs := NewDFS(NewSpace(log))
	for {
		il, ok := dfs.Next()
		if !ok {
			break
		}
		perm := make([]int, len(il))
		for i, id := range il {
			perm[i] = int(id)
		}
		if ok, _ := (oddBeforeEven{}).Canonical(perm); ok {
			reference = append(reference, il)
		}
	}
	if len(pruned) != len(reference) {
		t.Fatalf("pruned %d vs reference %d", len(pruned), len(reference))
	}
	for i := range pruned {
		if !pruned[i].Equal(reference[i]) {
			t.Fatalf("order diverges at %d: %v vs %v", i, pruned[i], reference[i])
		}
	}
}

func TestRandExplorerDistinctAndComplete(t *testing.T) {
	log := testLog(t, 4)
	r := NewRand(NewSpace(log), 42)
	all := Collect(r, 0)
	if len(all) != 24 {
		t.Fatalf("Rand yielded %d, want all 24", len(all))
	}
	keys := make(map[string]bool)
	for _, il := range all {
		keys[il.Key()] = true
	}
	if len(keys) != 24 {
		t.Fatal("Rand yielded duplicates")
	}
	if r.Shuffles() < 24 {
		t.Fatalf("Shuffles() = %d, must be >= 24", r.Shuffles())
	}
	if r.CacheSize() != 24 {
		t.Fatalf("CacheSize() = %d, want 24", r.CacheSize())
	}
}

func TestRandDeterministicBySeed(t *testing.T) {
	log := testLog(t, 5)
	a := Collect(NewRand(NewSpace(log), 7), 10)
	b := Collect(NewRand(NewSpace(log), 7), 10)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed must give same sequence")
		}
	}
	c := Collect(NewRand(NewSpace(log), 8), 10)
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should (overwhelmingly) differ")
	}
}

func TestCountExact(t *testing.T) {
	log := testLog(t, 4)
	space := NewSpace(log)
	res := Count(space, nil, 0, 1)
	if !res.Exact || res.Surviving.Cmp(big.NewInt(24)) != 0 {
		t.Fatalf("Count without filters = %v exact=%v, want 24 exact", res.Surviving, res.Exact)
	}
	res = Count(space, []Filter{oddBeforeEven{}}, 0, 1)
	if res.Surviving.Cmp(big.NewInt(12)) != 0 {
		t.Fatalf("Count with toy filter = %s, want 12", res.Surviving)
	}
	if got := res.ReductionFactor(); got < 1.99 || got > 2.01 {
		t.Fatalf("ReductionFactor = %f, want 2", got)
	}
}

func TestCountSampledApproximatesHalf(t *testing.T) {
	log := testLog(t, 12) // 12 units forces sampling
	space := NewSpace(log)
	res := Count(space, []Filter{oddBeforeEven{}}, 20000, 3)
	if res.Exact {
		t.Fatal("12-unit space must be sampled, not enumerated")
	}
	f := res.ReductionFactor()
	if f < 1.9 || f > 2.1 {
		t.Fatalf("sampled reduction factor = %f, want ≈2", f)
	}
}

func TestInterleavingKeyRoundTrip(t *testing.T) {
	il := Interleaving{3, 0, 2, 1}
	if il.Key() != "3,0,2,1" {
		t.Fatalf("Key() = %q", il.Key())
	}
}

func TestUnitLabel(t *testing.T) {
	if got := (Unit{Events: []event.ID{3}}).Label(); got != "3" {
		t.Fatalf("Label = %q", got)
	}
	if got := (Unit{Events: []event.ID{3, 4}}).Label(); got != "(3 4)" {
		t.Fatalf("Label = %q", got)
	}
}

func TestNextPermutationProperty(t *testing.T) {
	// Property: for random small n, iterating from identity enumerates
	// exactly n! distinct permutations.
	f := func(raw uint8) bool {
		n := int(raw%5) + 1 // 1..5
		p := identityPerm(n)
		count := 0
		seen := map[string]bool{}
		for {
			key := ""
			for _, x := range p {
				key += string(rune('0' + x))
			}
			if seen[key] {
				return false
			}
			seen[key] = true
			count++
			changed, ok := nextPermutation(p)
			if !ok {
				break
			}
			// The pivot contract incremental filters rely on: everything
			// before changedFrom is untouched, and p[changedFrom] differs.
			for i := 0; i < changed; i++ {
				if key[i] != byte('0'+p[i]) {
					return false
				}
			}
			if key[changed] == byte('0'+p[changed]) {
				return false
			}
		}
		want := Factorial(n)
		return want.IsInt64() && int64(count) == want.Int64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCollectLimit(t *testing.T) {
	log := testLog(t, 5)
	got := Collect(NewDFS(NewSpace(log)), 7)
	if len(got) != 7 {
		t.Fatalf("Collect limit: got %d, want 7", len(got))
	}
}

func TestUnitTouches(t *testing.T) {
	evs := []event.Event{
		{Kind: event.Update, Replica: "A"},
		{Kind: event.SyncSend, Replica: "A", From: "A", To: "B"},
		{Kind: event.SyncExec, Replica: "B", From: "A", To: "B"},
	}
	log, err := event.NewLog(evs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewGroupedSpace(log, []Unit{
		{Events: []event.ID{1, 2}},
		{Events: []event.ID{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.UnitTouches(0, "B") {
		t.Error("sync pair unit touches receiver B")
	}
	if s.UnitTouches(1, "B") {
		t.Error("update at A does not touch B")
	}
}

func TestSpaceUnitsCopy(t *testing.T) {
	log := testLog(t, 3)
	s := NewSpace(log)
	units := s.Units()
	units[0] = Unit{Events: []event.ID{99}}
	fresh := s.Units()
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Events[0] < fresh[j].Events[0] })
	if fresh[0].Events[0] != 0 {
		t.Fatal("Units() must return a copy")
	}
}

// TestDFSNextPivot: after each yield, NextPivot must announce exactly
// where the next yield diverges from the current one (in events), -1
// before the first yield and on the final permutation.
func TestDFSNextPivot(t *testing.T) {
	log := testLog(t, 5)
	d := NewDFS(NewSpace(log))
	if got := d.NextPivot(); got != -1 {
		t.Fatalf("NextPivot before the first yield = %d; want -1", got)
	}
	prev, ok := d.Next()
	if !ok {
		t.Fatal("empty exploration")
	}
	for {
		pivot := d.NextPivot()
		cur, ok := d.Next()
		if !ok {
			if pivot != -1 {
				t.Fatalf("NextPivot on the last permutation = %d; want -1", pivot)
			}
			break
		}
		shared := 0
		for shared < len(prev) && prev[shared] == cur[shared] {
			shared++
		}
		if pivot != shared {
			t.Fatalf("NextPivot = %d, but %v and %v share a %d-event prefix", pivot, prev, cur, shared)
		}
		prev = cur
	}
	if got := d.NextPivot(); got != -1 {
		t.Fatalf("NextPivot after exhaustion = %d; want -1", got)
	}
}
