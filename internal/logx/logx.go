// Package logx is the engine's shared structured logger: a process-wide
// leveled log/slog logger the binaries configure once (-log-level) and
// every component reaches through L(). Components attach themselves with
// structured attrs (component/worker/job) instead of formatting prefixes
// into the message, so fleet logs aggregate and filter mechanically.
package logx

import (
	"fmt"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
)

var (
	level  slog.LevelVar // defaults to LevelInfo
	logger atomic.Pointer[slog.Logger]
)

func init() {
	logger.Store(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: &level})))
}

// L returns the process logger.
func L() *slog.Logger { return logger.Load() }

// With returns the process logger with attrs attached — the usual way a
// component binds itself: logx.With("component", "checkpoint").
func With(args ...any) *slog.Logger { return L().With(args...) }

// SetLogger replaces the process logger (tests capturing output).
func SetLogger(l *slog.Logger) { logger.Store(l) }

// SetLevel sets the process log level from a flag string: debug, info,
// warn, or error (case-insensitive).
func SetLevel(s string) error {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		level.Set(slog.LevelDebug)
	case "", "info":
		level.Set(slog.LevelInfo)
	case "warn", "warning":
		level.Set(slog.LevelWarn)
	case "error":
		level.Set(slog.LevelError)
	default:
		return fmt.Errorf("logx: unknown log level %q (want debug, info, warn, or error)", s)
	}
	return nil
}
