package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"text/tabwriter"
	"time"

	"github.com/er-pi/erpi/internal/coordinator"
	"github.com/er-pi/erpi/internal/runner"
)

// Distributed exploration benchmark: the same DFS slice run once through
// the sequential in-process engine and then through a real coordinator
// with N in-process TCP workers. Beyond throughput, the run is a standing
// determinism check — every distributed digest must be byte-identical to
// the sequential one, or the report errors out.

// DefaultDistSlice is how many DFS interleavings each distributed run
// explores.
const DefaultDistSlice = 384

// DistRun is one worker-count measurement.
type DistRun struct {
	Workers   int     `json:"workers"`
	Explored  int     `json:"explored"`
	Seconds   float64 `json:"seconds"`
	PerSecond float64 `json:"interleavings_per_second"`
	// Speedup is the throughput ratio against the sequential in-process
	// run (coordination overhead makes workers=1 land below 1.0).
	Speedup float64 `json:"speedup_vs_sequential"`
	// Requeues counts orphaned ranges re-leased during the run (expected
	// 0 in a benchmark: nothing crashes here).
	Requeues int `json:"requeues"`
	// DigestMatch records the byte-identity check against the sequential
	// digest; RunDist fails hard when false, so a written report always
	// says true.
	DigestMatch bool `json:"digest_match"`
}

// DistReport is the BENCH_dist.json shape.
type DistReport struct {
	Benchmark     string    `json:"benchmark"`
	Mode          string    `json:"mode"`
	Interleavings int       `json:"interleavings"`
	RangeSize     int       `json:"range_size"`
	Digest        string    `json:"digest"`
	SeqSeconds    float64   `json:"sequential_seconds"`
	Runs          []DistRun `json:"runs"`
}

// RunDist measures coordinator throughput at each worker count (default
// 1/2/4) over a DFS slice of the Roshi-3 space, pinning every run's
// outcome digest against the sequential engine. slice <= 0 uses
// DefaultDistSlice.
func RunDist(slice int, workers []int) (*DistReport, error) {
	if slice <= 0 {
		slice = DefaultDistSlice
	}
	if len(workers) == 0 {
		workers = []int{1, 2, 4}
	}
	spec := coordinator.JobSpec{
		Bug:              "Roshi-3",
		Mode:             string(runner.ModeDFS),
		MaxInterleavings: slice,
		RangeSize:        32,
	}

	// Sequential ground truth: the same slice through the one-worker
	// in-process engine, digesting outcomes as they stream.
	scenario, _, err := spec.Build()
	if err != nil {
		return nil, err
	}
	d := coordinator.NewDigest()
	seqStart := time.Now()
	res, err := runner.Run(scenario, runner.Config{
		Mode:             runner.ModeDFS,
		MaxInterleavings: slice,
		Workers:          1,
		OnOutcome:        d.Observe,
	})
	if err != nil {
		return nil, err
	}
	seqElapsed := time.Since(seqStart)
	report := &DistReport{
		Benchmark:     spec.Bug,
		Mode:          spec.Mode,
		Interleavings: res.Explored,
		RangeSize:     spec.RangeSize,
		Digest:        d.Sum(),
		SeqSeconds:    seqElapsed.Seconds(),
	}
	seqPerSec := float64(res.Explored) / seqElapsed.Seconds()

	for _, w := range workers {
		run, err := runDistOnce(spec, w, res.Explored, report.Digest)
		if err != nil {
			return nil, err
		}
		run.Speedup = run.PerSecond / seqPerSec
		report.Runs = append(report.Runs, *run)
	}
	return report, nil
}

// runDistOnce stands up a fresh coordinator (ephemeral port, throwaway
// journal root, heartbeat-only liveness) and drives one job to completion
// with n in-process TCP workers.
func runDistOnce(spec coordinator.JobSpec, n, wantExplored int, wantDigest string) (*DistRun, error) {
	root, err := os.MkdirTemp("", "erpi-bench-dist-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	svc, err := coordinator.New(coordinator.Options{
		Addr:        "127.0.0.1:0",
		JournalRoot: root,
		LeaseTTL:    2 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	start := time.Now()
	job, err := svc.Submit(spec)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = coordinator.RunWorker(ctx, coordinator.WorkerOptions{
				Addr: svc.Addr(),
				Name: fmt.Sprintf("bench-%d", i),
				Once: true,
			})
		}(i)
	}
	select {
	case <-job.Done():
	case <-ctx.Done():
		return nil, fmt.Errorf("bench: dist workers=%d timed out (%+v)", n, job.Status())
	}
	elapsed := time.Since(start)
	cancel()
	wg.Wait()

	st := job.Status()
	if st.State != coordinator.StateDone {
		return nil, fmt.Errorf("bench: dist workers=%d ended %s: %s", n, st.State, st.Error)
	}
	if st.Explored != wantExplored {
		return nil, fmt.Errorf("bench: dist workers=%d explored %d, want %d", n, st.Explored, wantExplored)
	}
	if st.Digest != wantDigest {
		return nil, fmt.Errorf("bench: dist workers=%d digest %s diverged from sequential %s", n, st.Digest, wantDigest)
	}
	return &DistRun{
		Workers:     n,
		Explored:    st.Explored,
		Seconds:     elapsed.Seconds(),
		PerSecond:   float64(st.Explored) / elapsed.Seconds(),
		Requeues:    st.Requeues,
		DigestMatch: true,
	}, nil
}

// WriteDistJSON writes the report as indented JSON to path (the CI
// artifact BENCH_dist.json).
func (r *DistReport) WriteDistJSON(path string) error {
	return writeJSON(r, path)
}

// Render prints the report as a human-readable table.
func (r *DistReport) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "distributed exploration: %s, %s x %d interleavings (range size %d)\n",
		r.Benchmark, r.Mode, r.Interleavings, r.RangeSize)
	fmt.Fprintf(tw, "sequential baseline: %.2fs, digest %.12s…\n", r.SeqSeconds, r.Digest)
	fmt.Fprintln(tw, "workers\tinterleavings/s\tspeedup\tdigest")
	for _, run := range r.Runs {
		fmt.Fprintf(tw, "%d\t%.0f\t%.2fx\tmatch\n", run.Workers, run.PerSecond, run.Speedup)
	}
	return tw.Flush()
}
