package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/telemetry"
)

// Fuzz benchmark: throughput and coverage rate of the generation-batched
// feedback fuzzer as the worker pool widens. Every run replays the same
// ModeFuzz budget over Roshi-3 with the same seed; the generation barrier
// guarantees the corpus trajectory and the deduplicated signature set are
// identical at every worker count, so each run also records both digests
// and the report carries a single trajectory_match verdict CI gates on.

// DefaultFuzzSlice is how many fuzz interleavings each run replays.
const DefaultFuzzSlice = 512

// defaultFuzzSeed pins the corpus trajectory the report compares.
const defaultFuzzSeed = 1

// fuzzWireRTT is the simulated per-execution latency charged through
// Scenario.Finalize (which runs on the worker goroutine, exactly where a
// real library's network or disk round trip would land). Against the
// in-process checkpointed store the replay is CPU-bound and worker
// counts can't matter; charging a realistic RTT makes each execution
// latency-bound — the regime the generation-batched pool exists for,
// since concurrent workers overlap their waits while the corpus still
// evolves on one deterministic trajectory. Same technique as the live
// benchmark's liveWireRTT.
const fuzzWireRTT = time.Millisecond

// FuzzRun is one worker-count measurement.
type FuzzRun struct {
	Workers   int     `json:"workers"`
	Explored  int     `json:"explored"`
	Seconds   float64 `json:"seconds"`
	PerSecond float64 `json:"interleavings_per_second"`
	// Speedup is the throughput ratio against the Workers=1 run.
	Speedup float64 `json:"speedup_vs_sequential"`
	// Coverage is the number of distinct behaviour signatures observed;
	// CoveragePerSecond is the rate the run discovered them at.
	Coverage          int     `json:"coverage"`
	CoveragePerSecond float64 `json:"coverage_per_second"`
	Generations       int     `json:"generations"`
	CorpusSize        int     `json:"corpus_size"`
	// TrajectoryDigest pins the corpus evolution (admission order);
	// SignatureDigest pins the deduplicated outcome-signature set. Both
	// must be identical across the report's runs.
	TrajectoryDigest string      `json:"trajectory_digest"`
	SignatureDigest  string      `json:"signature_digest"`
	Stages           []PoolStage `json:"stage_means"`
}

// FuzzReport is the BENCH_fuzz.json shape.
type FuzzReport struct {
	Benchmark      string `json:"benchmark"`
	Mode           string `json:"mode"`
	Interleavings  int    `json:"interleavings"`
	GenerationSize int    `json:"generation_size"` // 0 = adaptive
	Seed           int64  `json:"seed"`
	// SimulatedWireRTTNs is the per-execution latency charged through
	// Scenario.Finalize (see fuzzWireRTT).
	SimulatedWireRTTNs int64 `json:"simulated_wire_rtt_ns"`
	// TrajectoryMatch reports that every run produced the same corpus
	// trajectory and signature digests — the same-seed determinism pin CI
	// fails on when false.
	TrajectoryMatch bool      `json:"trajectory_match"`
	Runs            []FuzzRun `json:"runs"`
}

// RunFuzz measures generation-batched fuzz throughput at each worker count
// (default 1/2/4/8) over the Roshi-3 workload. slice <= 0 uses
// DefaultFuzzSlice.
func RunFuzz(slice int, workers []int) (*FuzzReport, error) {
	if slice <= 0 {
		slice = DefaultFuzzSlice
	}
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	bug, ok := bugs.ByName("Roshi-3")
	if !ok {
		return nil, fmt.Errorf("bench: Roshi-3 missing from the corpus")
	}
	scenario, err := bug.Build()
	if err != nil {
		return nil, err
	}
	// Charge the simulated wire RTT on the worker goroutine, after the
	// replay and before the scenario's own finalizer (if any).
	finalize := scenario.Finalize
	scenario.Finalize = func(c *replica.Cluster) error {
		time.Sleep(fuzzWireRTT)
		if finalize != nil {
			return finalize(c)
		}
		return nil
	}
	report := &FuzzReport{
		Benchmark:          bug.Name,
		Mode:               string(runner.ModeFuzz),
		Interleavings:      slice,
		Seed:               defaultFuzzSeed,
		SimulatedWireRTTNs: int64(fuzzWireRTT),
	}
	var base float64
	for _, w := range workers {
		reg := telemetry.New()
		sigs := make(map[string]struct{})
		start := time.Now()
		res, err := runner.Run(scenario, runner.Config{
			Mode:             runner.ModeFuzz,
			Seed:             defaultFuzzSeed,
			Workers:          w,
			MaxInterleavings: slice,
			Telemetry:        reg,
			OnOutcome: func(o *runner.Outcome) {
				sigs[runner.OutcomeSignature(o)] = struct{}{}
			},
		})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if res.Explored != slice {
			return nil, fmt.Errorf("bench: fuzz workers=%d explored %d, want %d", w, res.Explored, slice)
		}
		if res.Fuzz == nil {
			return nil, fmt.Errorf("bench: fuzz workers=%d returned no fuzz stats", w)
		}
		run := FuzzRun{
			Workers:           w,
			Explored:          res.Explored,
			Seconds:           elapsed.Seconds(),
			PerSecond:         float64(res.Explored) / elapsed.Seconds(),
			Coverage:          res.Fuzz.Coverage,
			CoveragePerSecond: float64(res.Fuzz.Coverage) / elapsed.Seconds(),
			Generations:       res.Fuzz.Generations,
			CorpusSize:        res.Fuzz.CorpusSize,
			TrajectoryDigest:  res.Fuzz.TrajectoryDigest,
			SignatureDigest:   signatureDigest(sigs),
			Stages:            stageMeans(reg.Snapshot()),
		}
		if base == 0 {
			base = run.PerSecond
		}
		run.Speedup = run.PerSecond / base
		report.Runs = append(report.Runs, run)
	}
	report.TrajectoryMatch = true
	for _, run := range report.Runs {
		if run.TrajectoryDigest != report.Runs[0].TrajectoryDigest ||
			run.SignatureDigest != report.Runs[0].SignatureDigest {
			report.TrajectoryMatch = false
		}
	}
	return report, nil
}

// signatureDigest folds the deduplicated signature set into one stable
// hex digest (sorted, so arrival order is irrelevant).
func signatureDigest(sigs map[string]struct{}) string {
	keys := make([]string, 0, len(sigs))
	for s := range sigs {
		keys = append(keys, s)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, s := range keys {
		fmt.Fprintf(h, "%s;", s)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// WriteFuzzJSON writes the report as indented JSON to path (the CI
// artifact BENCH_fuzz.json).
func (r *FuzzReport) WriteFuzzJSON(path string) error {
	return writeJSON(r, path)
}

// Render prints the report as a human-readable table.
func (r *FuzzReport) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "fuzz throughput: %s, %s x %d interleavings, seed %d, %v simulated wire RTT\n",
		r.Benchmark, r.Mode, r.Interleavings, r.Seed, time.Duration(r.SimulatedWireRTTNs))
	fmt.Fprintln(tw, "workers\tinterleavings/s\tspeedup\tcoverage/s\tgenerations\tcorpus")
	for _, run := range r.Runs {
		fmt.Fprintf(tw, "%d\t%.0f\t%.2fx\t%.1f\t%d\t%d\n",
			run.Workers, run.PerSecond, run.Speedup, run.CoveragePerSecond, run.Generations, run.CorpusSize)
	}
	if r.TrajectoryMatch {
		fmt.Fprintln(tw, "corpus trajectory: identical at every worker count")
	} else {
		fmt.Fprintln(tw, "corpus trajectory: DIVERGED across worker counts (determinism regression)")
	}
	return tw.Flush()
}
