package bench

import (
	"strings"
	"testing"

	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/runner"
)

func TestRunFig8SubsetShapes(t *testing.T) {
	// A fast subset: one bug every mode reproduces quickly.
	res, err := RunFig8(2000, 1, "OrbitDB-2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 modes", len(res.Rows))
	}
	byMode := map[runner.Mode]Fig8Row{}
	for _, r := range res.Rows {
		if r.Bug != "OrbitDB-2" {
			t.Fatalf("unexpected bug %s", r.Bug)
		}
		byMode[r.Mode] = r
	}
	erpi := byMode[runner.ModeERPi]
	dfs := byMode[runner.ModeDFS]
	if !erpi.Reproduced || !dfs.Reproduced {
		t.Fatal("OrbitDB-2 must reproduce under ER-π and DFS")
	}
	if erpi.Interleavings > dfs.Interleavings {
		t.Fatalf("ER-π (%d) must not need more interleavings than DFS (%d)",
			erpi.Interleavings, dfs.Interleavings)
	}
	rendered := res.Render()
	for _, want := range []string{"Figure 8a", "Figure 8b", "Aggregates"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRunFig8UnknownBug(t *testing.T) {
	if _, err := RunFig8(10, 1, "NotABug"); err == nil {
		t.Fatal("unknown bug must error")
	}
}

func TestRunTable2AllDetected(t *testing.T) {
	cells, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 14 {
		t.Fatalf("cells = %d, want 14", len(cells))
	}
	for _, c := range cells {
		if !c.Detected {
			t.Errorf("%s#%d not detected", c.Subject, c.Misconception)
		}
	}
	var b strings.Builder
	if err := WriteTable2(&b, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Roshi") || !strings.Contains(b.String(), "✓") {
		t.Fatalf("table render broken:\n%s", b.String())
	}
}

func TestRunFig9Shapes(t *testing.T) {
	rows, err := RunFig9(4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	stagesPerBug := map[string]map[prune.AblationStage]bool{}
	for _, r := range rows {
		if r.Reduction < 1 {
			t.Errorf("%s/%s reduction %f < 1: pruning must never grow the space",
				r.Bug, r.Stage, r.Reduction)
		}
		if stagesPerBug[r.Bug] == nil {
			stagesPerBug[r.Bug] = map[prune.AblationStage]bool{}
		}
		stagesPerBug[r.Bug][r.Stage] = true
	}
	if len(stagesPerBug) != 12 {
		t.Fatalf("bugs covered = %d, want 12", len(stagesPerBug))
	}
	for bug, stages := range stagesPerBug {
		if !stages[prune.StageGrouping] || !stages[prune.StageReplica] {
			t.Errorf("%s missing grouping or replica-specific ablation", bug)
		}
	}
	var b strings.Builder
	if err := WriteFig9(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "grouping") {
		t.Fatal("fig9 render broken")
	}
}

func TestRunFig10SucceedOrCrash(t *testing.T) {
	rows, err := RunFig10(2, DefaultFig10Budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 2 runs x 3 modes", len(rows))
	}
	for _, r := range rows {
		switch r.Mode {
		case runner.ModeERPi:
			if !r.Succeed {
				t.Errorf("run %d: ER-π must succeed within the budget", r.Run)
			}
		case runner.ModeDFS, runner.ModeRand:
			if r.Succeed {
				t.Errorf("run %d: %s should exhaust the budget on the 24-event space", r.Run, r.Mode)
			}
		}
	}
	var b strings.Builder
	if err := WriteFig10(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "✓") || !strings.Contains(b.String(), "✗") {
		t.Fatalf("fig10 render broken:\n%s", b.String())
	}
}

func TestRunTable1FastSubset(t *testing.T) {
	// The full Table 1 runs in cmd/erpi-bench; here check the renderer and
	// a couple of rows through the real path.
	rows, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Reproduced {
			t.Errorf("%s not reproduced", r.Name)
		}
	}
	var b strings.Builder
	if err := WriteTable1(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Roshi-1") {
		t.Fatal("table1 render broken")
	}
}
