package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/telemetry"
)

// Prefix benchmark: the incremental replay engine's effect on exhaustive
// exploration. Lexicographic DFS enumerates interleavings in an order
// where consecutive ones share long prefixes; the snapshot trie restores
// the deepest cached prefix and executes only the suffix. Each run
// replays the same DFS slice of Roshi-3's space at one cache byte budget
// and reports how many events were executed vs. skipped, the resulting
// throughput against the cache-off baseline, and — the safety half — a
// digest proving the outcome stream is byte-identical to the baseline's.

// DefaultPrefixSlice is how many DFS interleavings each prefix run
// replays.
const DefaultPrefixSlice = DefaultPoolSlice

// DefaultPrefixBudgets are the cache byte budgets swept by RunPrefix.
var DefaultPrefixBudgets = []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20}

// PrefixRun is one cache-budget measurement.
type PrefixRun struct {
	// BudgetBytes is the prefix-cache byte budget (0 = cache off).
	BudgetBytes    int64   `json:"budget_bytes"`
	Explored       int     `json:"explored"`
	EventsExecuted int64   `json:"events_executed"`
	EventsSkipped  int64   `json:"events_skipped"`
	Hits           int64   `json:"prefix_cache_hits"`
	Misses         int64   `json:"prefix_cache_misses"`
	Evictions      int64   `json:"prefix_evictions"`
	Seconds        float64 `json:"seconds"`
	PerSecond      float64 `json:"interleavings_per_second"`
	// Speedup is the throughput ratio against the cache-off baseline.
	Speedup float64 `json:"speedup_vs_off"`
	// EventReduction is baseline executed events over this run's executed
	// events — the paper-facing "events not re-executed" factor.
	EventReduction float64 `json:"event_reduction"`
	// IdenticalResult reports whether the outcome-stream digest matches
	// the cache-off baseline exactly.
	IdenticalResult bool   `json:"identical_result"`
	Digest          string `json:"outcome_digest"`
}

// PrefixReport is the BENCH_prefix.json shape.
type PrefixReport struct {
	Benchmark     string      `json:"benchmark"`
	Mode          string      `json:"mode"`
	Interleavings int         `json:"interleavings"`
	Baseline      PrefixRun   `json:"baseline"`
	Runs          []PrefixRun `json:"runs"`
}

// RunPrefix measures incremental-replay gains over a DFS slice of the
// Roshi-3 space: one cache-off baseline, then one run per byte budget.
// slice <= 0 uses DefaultPrefixSlice; empty budgets use
// DefaultPrefixBudgets. All runs are sequential (Workers: 1) so the
// executed-event counts are deterministic.
func RunPrefix(slice int, budgets []int64) (*PrefixReport, error) {
	if slice <= 0 {
		slice = DefaultPrefixSlice
	}
	if len(budgets) == 0 {
		budgets = DefaultPrefixBudgets
	}
	bug, ok := bugs.ByName("Roshi-3")
	if !ok {
		return nil, fmt.Errorf("bench: Roshi-3 missing from the corpus")
	}
	report := &PrefixReport{
		Benchmark:     bug.Name,
		Mode:          string(runner.ModeDFS),
		Interleavings: slice,
	}
	baseline, err := prefixRun(bug, slice, 0)
	if err != nil {
		return nil, err
	}
	baseline.Speedup = 1
	baseline.EventReduction = 1
	baseline.IdenticalResult = true
	report.Baseline = *baseline
	for _, budget := range budgets {
		run, err := prefixRun(bug, slice, budget)
		if err != nil {
			return nil, err
		}
		run.Speedup = run.PerSecond / baseline.PerSecond
		if run.EventsExecuted > 0 {
			run.EventReduction = float64(baseline.EventsExecuted) / float64(run.EventsExecuted)
		}
		run.IdenticalResult = run.Digest == baseline.Digest
		report.Runs = append(report.Runs, *run)
	}
	return report, nil
}

func prefixRun(bug *bugs.Benchmark, slice int, budget int64) (*PrefixRun, error) {
	scenario, err := bug.Build()
	if err != nil {
		return nil, err
	}
	reg := telemetry.New()
	digest := sha256.New()
	start := time.Now()
	res, err := runner.Run(scenario, runner.Config{
		Mode:             runner.ModeDFS,
		Workers:          1,
		MaxInterleavings: slice,
		PrefixCacheBytes: budget,
		Telemetry:        reg,
		OnOutcome: func(o *runner.Outcome) {
			raw, err := json.Marshal(o)
			if err != nil {
				panic(err) // outcomes marshal by construction
			}
			digest.Write(raw)
		},
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	if res.Explored != slice {
		return nil, fmt.Errorf("bench: prefix budget=%d explored %d, want %d", budget, res.Explored, slice)
	}
	snap := reg.Snapshot()
	return &PrefixRun{
		BudgetBytes:    budget,
		Explored:       res.Explored,
		EventsExecuted: snap.Counters["runner.events_executed"],
		EventsSkipped:  snap.Counters["runner.events_skipped"],
		Hits:           snap.Counters["runner.prefix_cache_hits"],
		Misses:         snap.Counters["runner.prefix_cache_misses"],
		Evictions:      snap.Counters["runner.prefix_evictions"],
		Seconds:        elapsed.Seconds(),
		PerSecond:      float64(res.Explored) / elapsed.Seconds(),
		Digest:         hex.EncodeToString(digest.Sum(nil)),
	}, nil
}

// WritePrefixJSON writes the report as indented JSON to path (the CI
// artifact BENCH_prefix.json).
func (r *PrefixReport) WritePrefixJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the report as a human-readable table.
func (r *PrefixReport) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "incremental replay: %s, %s x %d interleavings\n", r.Benchmark, r.Mode, r.Interleavings)
	fmt.Fprintln(tw, "budget\texecuted\tskipped\tevent reduction\tinterleavings/s\tspeedup\tidentical")
	row := func(label string, run PrefixRun) {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2fx\t%.0f\t%.2fx\t%v\n",
			label, run.EventsExecuted, run.EventsSkipped, run.EventReduction,
			run.PerSecond, run.Speedup, run.IdenticalResult)
	}
	row("off", r.Baseline)
	for _, run := range r.Runs {
		row(fmt.Sprintf("%dKiB", run.BudgetBytes>>10), run)
	}
	return tw.Flush()
}
