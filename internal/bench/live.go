package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/lockserver"
	"github.com/er-pi/erpi/internal/proxy"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/telemetry"
)

// Live benchmark: throughput of the live replay path (goroutine per
// replica, turns ordered by a lock server) as the session pool widens,
// plus the blocking-vs-polling sequencer comparison. Every run replays
// the same DFS slice of Roshi-3 against an in-process lock server over
// real TCP, and every run's outcome-signature digest must match a
// hand-rolled sequential ExecuteLive loop — the benchmark doubles as a
// determinism pin for the numbers it reports.

// DefaultLiveSlice is how many DFS interleavings each live run replays.
// Smaller than DefaultPoolSlice: a live interleaving pays one lock-server
// round trip per turn.
const DefaultLiveSlice = 64

// liveLeaseTTL is the per-turn mutex lease for benchmark sessions; long
// enough that no healthy run ever loses a lease.
const liveLeaseTTL = 10 * time.Second

// liveWireRTT is the simulated wire latency charged to every lock-server
// request (via the client fault hook, so it delays exactly where a real
// network would). Against a loopback server the replay is CPU-bound and
// session counts can't matter; charging a realistic RTT makes each
// session latency-bound — which is the regime the sharded pool exists
// for, since concurrent sessions overlap their wire waits. Sleeps round
// up to the host's timer granularity, which only makes the simulated
// wire slower; the speedup ratio is what the sweep is after.
const liveWireRTT = time.Millisecond

// LiveRun is one session-count measurement.
type LiveRun struct {
	Workers   int     `json:"workers"`
	Explored  int     `json:"explored"`
	Seconds   float64 `json:"seconds"`
	PerSecond float64 `json:"interleavings_per_second"`
	// Speedup is the throughput ratio against the single-session run.
	Speedup float64 `json:"speedup_vs_one_session"`
	// TurnWaitP50Ns is the median sequencer turn wait across all of the
	// run's sessions (blocking WAITGE unless the run is the polling
	// baseline).
	TurnWaitP50Ns int64 `json:"turn_wait_p50_ns"`
	// Digest is the sha256 over the run's outcome-signature stream; equal
	// to the report's SequentialDigest by construction (verified).
	Digest string      `json:"outcome_digest"`
	Stages []PoolStage `json:"stage_means"`
}

// LiveReport is the BENCH_live.json shape.
type LiveReport struct {
	Benchmark     string `json:"benchmark"`
	Mode          string `json:"mode"`
	Interleavings int    `json:"interleavings"`
	// SequentialDigest is the outcome-signature digest of a plain
	// sequential ExecuteLive loop over the same slice — the reference
	// every pooled run must reproduce byte-for-byte.
	SequentialDigest string `json:"sequential_digest"`
	// SimulatedWireRTTNs is the per-request latency charged to every
	// lock-server call (see liveWireRTT).
	SimulatedWireRTTNs int64     `json:"simulated_wire_rtt_ns"`
	Runs               []LiveRun `json:"runs"`
	// BlockingTurnWaitP50Ns vs PollingTurnWaitP50Ns compare the median
	// turn wait at the widest session count with server-side WAITGE
	// long-polls against the 1ms client polling baseline. Both are
	// measured on bare loopback (no simulated RTT): that isolates
	// turn-notification latency, the thing blocking waits improve, from
	// the schedule waits that dominate either way on a slow wire.
	BlockingTurnWaitP50Ns int64 `json:"blocking_turn_wait_p50_ns"`
	PollingTurnWaitP50Ns  int64 `json:"polling_turn_wait_p50_ns"`
}

// RunLive measures live-pool throughput at each session count (default
// 1/2/4/8) over a DFS slice of the Roshi-3 space, then repeats the widest
// count with blocking waits disabled for the polling baseline. slice <= 0
// uses DefaultLiveSlice.
func RunLive(slice int, workers []int) (*LiveReport, error) {
	if slice <= 0 {
		slice = DefaultLiveSlice
	}
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	bug, ok := bugs.ByName("Roshi-3")
	if !ok {
		return nil, fmt.Errorf("bench: Roshi-3 missing from the corpus")
	}
	scenario, err := bug.Build()
	if err != nil {
		return nil, err
	}
	srv := lockserver.NewServer(lockserver.NewStore())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("bench: lock server: %w", err)
	}
	defer srv.Close()

	report := &LiveReport{
		Benchmark:          bug.Name,
		Mode:               string(runner.ModeDFS),
		Interleavings:      slice,
		SimulatedWireRTTNs: int64(liveWireRTT),
	}
	report.SequentialDigest, err = sequentialLiveDigest(scenario, slice)
	if err != nil {
		return nil, err
	}

	var base float64
	for _, w := range workers {
		run, err := liveRun(scenario, addr, slice, w, true, true)
		if err != nil {
			return nil, err
		}
		if run.Digest != report.SequentialDigest {
			return nil, fmt.Errorf("bench: live workers=%d digest %s != sequential %s",
				w, run.Digest, report.SequentialDigest)
		}
		if base == 0 {
			base = run.PerSecond
		}
		run.Speedup = run.PerSecond / base
		report.Runs = append(report.Runs, *run)
	}

	// The notification-latency comparison: same widest session count, bare
	// loopback, blocking vs polling sequencer turns.
	widest := workers[len(workers)-1]
	for _, blocking := range []bool{true, false} {
		run, err := liveRun(scenario, addr, slice, widest, blocking, false)
		if err != nil {
			return nil, err
		}
		if run.Digest != report.SequentialDigest {
			return nil, fmt.Errorf("bench: loopback blocking=%v digest %s != sequential %s",
				blocking, run.Digest, report.SequentialDigest)
		}
		if blocking {
			report.BlockingTurnWaitP50Ns = run.TurnWaitP50Ns
		} else {
			report.PollingTurnWaitP50Ns = run.TurnWaitP50Ns
		}
	}
	return report, nil
}

// liveRun replays the slice once through the live pool at the given
// session count, with blocking sequencer turns on or off and the
// simulated wire RTT charged or not.
func liveRun(scenario runner.Scenario, addr string, slice, w int, blocking, rtt bool) (*LiveRun, error) {
	reg := telemetry.New()
	var (
		mu    sync.Mutex
		pools []*proxy.DistPool
	)
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, p := range pools {
			_ = p.Close()
		}
	}()
	gates := runner.LiveGates(func(worker int) (runner.SessionFactory, error) {
		p := proxy.NewDistPool(addr, "bench", worker, liveLeaseTTL)
		if rtt {
			p.SetFaultHook(func(string, []string) error { time.Sleep(liveWireRTT); return nil })
		}
		p.SetTurnWaitMetrics(reg.Histogram(fmt.Sprintf("live.turn_wait_ns.w%d", worker)))
		if !blocking {
			p.DisableBlocking()
		}
		mu.Lock()
		pools = append(pools, p)
		mu.Unlock()
		return func() (runner.LiveSession, error) { return p.Session(), nil }, nil
	})
	digest := sha256.New()
	start := time.Now()
	res, err := runner.Run(scenario, runner.Config{
		Mode:             runner.ModeDFS,
		LiveWorkers:      w,
		LiveGates:        gates,
		MaxInterleavings: slice,
		Telemetry:        reg,
		OnOutcome:        func(o *runner.Outcome) { signInto(digest, o) },
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	if res.Explored != slice {
		return nil, fmt.Errorf("bench: live workers=%d explored %d, want %d", w, res.Explored, slice)
	}
	snap := reg.Snapshot()
	return &LiveRun{
		Workers:       w,
		Explored:      res.Explored,
		Seconds:       elapsed.Seconds(),
		PerSecond:     float64(res.Explored) / elapsed.Seconds(),
		TurnWaitP50Ns: turnWaitP50(snap),
		Digest:        hex.EncodeToString(digest.Sum(nil)),
		Stages:        stageMeans(snap),
	}, nil
}

// sequentialLiveDigest replays the slice through plain ExecuteLive, one
// interleaving at a time under an in-process gate — the reference stream
// every pooled run must match.
func sequentialLiveDigest(scenario runner.Scenario, slice int) (string, error) {
	ils := interleave.Collect(interleave.NewDFS(interleave.NewSpace(scenario.Log)), slice)
	if len(ils) != slice {
		return "", fmt.Errorf("bench: DFS yielded %d interleavings, want %d", len(ils), slice)
	}
	digest := sha256.New()
	for _, il := range ils {
		gate := proxy.NewLocalGate()
		o, err := runner.ExecuteLive(scenario, il, func(event.ReplicaID) proxy.TurnGate { return gate })
		if err != nil {
			return "", fmt.Errorf("bench: sequential live replay: %w", err)
		}
		signInto(digest, o)
	}
	return hex.EncodeToString(digest.Sum(nil)), nil
}

// signInto folds one outcome's order-insensitive signature into a digest.
func signInto(h hash.Hash, o *runner.Outcome) {
	io.WriteString(h, runner.OutcomeSignature(o))
	io.WriteString(h, "\n")
}

// turnWaitP50 merges the run's per-session live.turn_wait_ns.w<N>
// histograms and returns the median wait.
func turnWaitP50(snap telemetry.Snapshot) int64 {
	var merged telemetry.HistogramSnapshot
	for name, h := range snap.Histograms {
		if !strings.HasPrefix(name, "live.turn_wait_ns.") {
			continue
		}
		if merged.Bounds == nil {
			merged.Bounds = h.Bounds
			merged.Counts = make([]int64, len(h.Counts))
		}
		for i, c := range h.Counts {
			if i < len(merged.Counts) {
				merged.Counts[i] += c
			}
		}
		merged.Count += h.Count
		merged.Sum += h.Sum
		if h.Max > merged.Max {
			merged.Max = h.Max
		}
	}
	return merged.Quantile(0.5)
}

// WriteLiveJSON writes the report as indented JSON to path (the CI
// artifact BENCH_live.json).
func (r *LiveReport) WriteLiveJSON(path string) error {
	return writeJSON(r, path)
}

// Render prints the report as a human-readable table.
func (r *LiveReport) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "live replay throughput: %s, %s x %d interleavings, %v simulated wire RTT (digest %.12s, matches sequential)\n",
		r.Benchmark, r.Mode, r.Interleavings, time.Duration(r.SimulatedWireRTTNs), r.SequentialDigest)
	fmt.Fprintln(tw, "sessions\tinterleavings/s\tspeedup\tturn-wait p50")
	for _, run := range r.Runs {
		fmt.Fprintf(tw, "%d\t%.0f\t%.2fx\t%v\n", run.Workers, run.PerSecond, run.Speedup,
			time.Duration(run.TurnWaitP50Ns).Round(time.Microsecond))
	}
	fmt.Fprintf(tw, "turn-wait p50 at %d sessions on bare loopback: blocking %v vs polling %v\n",
		r.Runs[len(r.Runs)-1].Workers,
		time.Duration(r.BlockingTurnWaitP50Ns).Round(time.Microsecond),
		time.Duration(r.PollingTurnWaitP50Ns).Round(time.Microsecond))
	return tw.Flush()
}
