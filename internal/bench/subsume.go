package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/telemetry"
)

// Subsumption benchmark: state-subsumption pruning's effect on exhaustive
// exploration (DESIGN.md §4.12). Lexicographic DFS revisits the same
// cluster state through many commuting prefixes; the visited-frontier
// table proves a suffix's outcomes are already covered by an executed
// witness and skips the execution entirely. Each run replays the same DFS
// slice of Roshi-3's space at one table byte budget and reports how many
// interleavings executed vs. were subsumed, the throughput against the
// table-off baseline, and — the safety half — a digest over the
// deduplicated outcome-signature set proving the observable behavior
// inventory is unchanged. (The per-index outcome stream is NOT compared:
// subsumed indices produce no outcome by design, so the invariant is the
// signature set, not the stream.)

// DefaultSubsumeSlice is how many DFS interleavings each subsumption run
// replays. Larger than the pool/prefix slices: the frontier table needs
// enough commuting prefixes in the slice for witnesses to accumulate.
const DefaultSubsumeSlice = 512

// DefaultSubsumeBudgets are the table byte budgets swept by RunSubsume.
var DefaultSubsumeBudgets = []int64{64 << 10, 256 << 10, 1 << 20, 16 << 20}

// SubsumeRun is one table-budget measurement.
type SubsumeRun struct {
	// BudgetBytes is the subsumption table byte budget (0 = pruning off).
	BudgetBytes int64 `json:"budget_bytes"`
	Explored    int   `json:"explored"`
	// Executed is Explored minus Subsumed — interleavings that actually
	// ran against a cluster.
	Executed  int     `json:"executed"`
	Subsumed  int     `json:"subsumed"`
	HeldBytes int64   `json:"table_bytes_held"`
	Seconds   float64 `json:"seconds"`
	PerSecond float64 `json:"interleavings_per_second"`
	// Speedup is the throughput ratio against the table-off baseline.
	Speedup float64 `json:"speedup_vs_off"`
	// Reduction is baseline executions over this run's executions — the
	// paper-facing "interleavings not executed" factor.
	Reduction float64 `json:"execution_reduction"`
	// IdenticalSignatures reports whether the deduplicated outcome-
	// signature set matches the table-off baseline exactly.
	IdenticalSignatures bool   `json:"identical_signatures"`
	SignatureDigest     string `json:"signature_digest"`
}

// SubsumeReport is the BENCH_subsume.json shape.
type SubsumeReport struct {
	Benchmark     string       `json:"benchmark"`
	Mode          string       `json:"mode"`
	Interleavings int          `json:"interleavings"`
	Baseline      SubsumeRun   `json:"baseline"`
	Runs          []SubsumeRun `json:"runs"`
}

// RunSubsume measures subsumption gains over a DFS slice of the Roshi-3
// space: one table-off baseline, then one run per byte budget. slice <= 0
// uses DefaultSubsumeSlice; empty budgets use DefaultSubsumeBudgets. All
// runs are sequential (Workers: 1) so the subsumed counts are
// deterministic.
func RunSubsume(slice int, budgets []int64) (*SubsumeReport, error) {
	if slice <= 0 {
		slice = DefaultSubsumeSlice
	}
	if len(budgets) == 0 {
		budgets = DefaultSubsumeBudgets
	}
	bug, ok := bugs.ByName("Roshi-3")
	if !ok {
		return nil, fmt.Errorf("bench: Roshi-3 missing from the corpus")
	}
	report := &SubsumeReport{
		Benchmark:     bug.Name,
		Mode:          string(runner.ModeDFS),
		Interleavings: slice,
	}
	baseline, err := subsumeRun(bug, slice, 0)
	if err != nil {
		return nil, err
	}
	baseline.Speedup = 1
	baseline.Reduction = 1
	baseline.IdenticalSignatures = true
	report.Baseline = *baseline
	for _, budget := range budgets {
		run, err := subsumeRun(bug, slice, budget)
		if err != nil {
			return nil, err
		}
		run.Speedup = run.PerSecond / baseline.PerSecond
		if run.Executed > 0 {
			run.Reduction = float64(baseline.Executed) / float64(run.Executed)
		}
		run.IdenticalSignatures = run.SignatureDigest == baseline.SignatureDigest
		report.Runs = append(report.Runs, *run)
	}
	return report, nil
}

func subsumeRun(bug *bugs.Benchmark, slice int, budget int64) (*SubsumeRun, error) {
	scenario, err := bug.Build()
	if err != nil {
		return nil, err
	}
	reg := telemetry.New()
	sigs := make(map[string]struct{})
	start := time.Now()
	res, err := runner.Run(scenario, runner.Config{
		Mode:             runner.ModeDFS,
		Workers:          1,
		MaxInterleavings: slice,
		SubsumptionTable: budget,
		Telemetry:        reg,
		OnOutcome: func(o *runner.Outcome) {
			sigs[runner.OutcomeSignature(o)] = struct{}{}
		},
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	if res.Explored != slice {
		return nil, fmt.Errorf("bench: subsume budget=%d explored %d, want %d", budget, res.Explored, slice)
	}
	snap := reg.Snapshot()
	return &SubsumeRun{
		BudgetBytes:     budget,
		Explored:        res.Explored,
		Executed:        res.Explored - res.Subsumed,
		Subsumed:        res.Subsumed,
		HeldBytes:       snap.Gauges["runner.subsumption_table_bytes"],
		Seconds:         elapsed.Seconds(),
		PerSecond:       float64(res.Explored) / elapsed.Seconds(),
		SignatureDigest: signatureSetDigest(sigs),
	}, nil
}

// signatureSetDigest hashes the deduplicated signature set in sorted
// order, so the digest is insensitive to both outcome order and how many
// interleavings produced each signature — exactly the invariant
// subsumption guarantees.
func signatureSetDigest(sigs map[string]struct{}) string {
	sorted := make([]string, 0, len(sigs))
	for s := range sigs {
		sorted = append(sorted, s)
	}
	sort.Strings(sorted)
	h := sha256.New()
	for _, s := range sorted {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// WriteSubsumeJSON writes the report as indented JSON to path (the CI
// artifact BENCH_subsume.json).
func (r *SubsumeReport) WriteSubsumeJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the report as a human-readable table.
func (r *SubsumeReport) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "state subsumption: %s, %s x %d interleavings\n", r.Benchmark, r.Mode, r.Interleavings)
	fmt.Fprintln(tw, "budget\texecuted\tsubsumed\treduction\tinterleavings/s\tspeedup\tidentical sigs")
	row := func(label string, run SubsumeRun) {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2fx\t%.0f\t%.2fx\t%v\n",
			label, run.Executed, run.Subsumed, run.Reduction,
			run.PerSecond, run.Speedup, run.IdenticalSignatures)
	}
	row("off", r.Baseline)
	for _, run := range r.Runs {
		row(fmt.Sprintf("%dKiB", run.BudgetBytes>>10), run)
	}
	return tw.Flush()
}
