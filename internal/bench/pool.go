package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/telemetry"
)

// Pool benchmark: the sharded exploration engine's throughput as the
// worker pool widens, captured machine-readably so CI can archive and
// trend it. Each run replays the same DFS slice of Roshi-3's 21-event
// space at a worker count, with a telemetry registry attached; the
// per-stage span histograms break the wall-clock down into where the
// engine actually spent it.

// DefaultPoolSlice is how many DFS interleavings each pool run replays.
const DefaultPoolSlice = 192

// PoolStage is one exploration stage's latency aggregate for a run.
type PoolStage struct {
	Stage  string  `json:"stage"`
	Count  int64   `json:"count"`
	MeanNs float64 `json:"mean_ns"`
}

// PoolRun is one worker-count measurement.
type PoolRun struct {
	Workers   int     `json:"workers"`
	Explored  int     `json:"explored"`
	Seconds   float64 `json:"seconds"`
	PerSecond float64 `json:"interleavings_per_second"`
	// Speedup is the throughput ratio against the sequential run (1.0 for
	// workers=1; meaningful only on a multi-core host).
	Speedup float64     `json:"speedup_vs_sequential"`
	Stages  []PoolStage `json:"stage_means"`
}

// PoolReport is the BENCH_pool.json shape.
type PoolReport struct {
	Benchmark     string    `json:"benchmark"`
	Mode          string    `json:"mode"`
	Interleavings int       `json:"interleavings"`
	Runs          []PoolRun `json:"runs"`
}

// RunPool measures pool throughput at each worker count (default 1/2/4/8)
// over a DFS slice of the Roshi-3 space. slice <= 0 uses DefaultPoolSlice.
func RunPool(slice int, workers []int) (*PoolReport, error) {
	if slice <= 0 {
		slice = DefaultPoolSlice
	}
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	bug, ok := bugs.ByName("Roshi-3")
	if !ok {
		return nil, fmt.Errorf("bench: Roshi-3 missing from the corpus")
	}
	scenario, err := bug.Build()
	if err != nil {
		return nil, err
	}
	report := &PoolReport{
		Benchmark:     bug.Name,
		Mode:          string(runner.ModeDFS),
		Interleavings: slice,
	}
	var base float64
	for _, w := range workers {
		reg := telemetry.New()
		start := time.Now()
		res, err := runner.Run(scenario, runner.Config{
			Mode:             runner.ModeDFS,
			Workers:          w,
			MaxInterleavings: slice,
			Telemetry:        reg,
		})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if res.Explored != slice {
			return nil, fmt.Errorf("bench: pool workers=%d explored %d, want %d", w, res.Explored, slice)
		}
		run := PoolRun{
			Workers:   w,
			Explored:  res.Explored,
			Seconds:   elapsed.Seconds(),
			PerSecond: float64(res.Explored) / elapsed.Seconds(),
			Stages:    stageMeans(reg.Snapshot()),
		}
		if base == 0 {
			base = run.PerSecond
		}
		run.Speedup = run.PerSecond / base
		report.Runs = append(report.Runs, run)
	}
	return report, nil
}

// stageMeans extracts the per-stage latency means from a registry
// snapshot's stage.<name>_ns histograms, sorted by stage name.
func stageMeans(snap telemetry.Snapshot) []PoolStage {
	var out []PoolStage
	for name, h := range snap.Histograms {
		stage, ok := strings.CutPrefix(name, "stage.")
		if !ok {
			continue
		}
		stage, ok = strings.CutSuffix(stage, "_ns")
		if !ok || h.Count == 0 {
			continue
		}
		out = append(out, PoolStage{Stage: stage, Count: h.Count, MeanNs: h.Mean()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// WritePoolJSON writes the report as indented JSON to path (the CI
// artifact BENCH_pool.json).
func (r *PoolReport) WritePoolJSON(path string) error {
	return writeJSON(r, path)
}

// writeJSON persists any report as indented JSON.
func writeJSON(v any, path string) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the report as a human-readable table.
func (r *PoolReport) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "pool throughput: %s, %s x %d interleavings\n", r.Benchmark, r.Mode, r.Interleavings)
	fmt.Fprintln(tw, "workers\tinterleavings/s\tspeedup\texecute mean")
	for _, run := range r.Runs {
		var execMean time.Duration
		for _, st := range run.Stages {
			if st.Stage == "execute" {
				execMean = time.Duration(st.MeanNs)
			}
		}
		fmt.Fprintf(tw, "%d\t%.0f\t%.2fx\t%v\n", run.Workers, run.PerSecond, run.Speedup, execMean.Round(time.Microsecond))
	}
	return tw.Flush()
}
