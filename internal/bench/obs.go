package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"text/tabwriter"
	"time"

	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/coordinator"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/telemetry"
)

// Observability benchmark: what telemetry and fleet federation cost. The
// same DFS slice runs locally with no registry and with one attached, then
// through a real coordinator with two TCP workers — first silent, then
// with every worker reporting metrics, progress, and span deltas on a
// tight federation interval. Telemetry is sold as strictly observational,
// so this report is the standing receipt: each instrumented run's overhead
// against its uninstrumented twin, expected within a few percent.

// DefaultObsSlice is how many DFS interleavings each observability run
// replays.
const DefaultObsSlice = 192

// ObsRun is one configuration's measurement.
type ObsRun struct {
	// Config names the configuration: local-plain, local-telemetry,
	// dist-plain, dist-federated.
	Config    string  `json:"config"`
	Explored  int     `json:"explored"`
	Seconds   float64 `json:"seconds"`
	PerSecond float64 `json:"interleavings_per_second"`
	// OverheadPct is the wall-clock overhead against the configuration's
	// uninstrumented twin (0 for the twins themselves).
	OverheadPct float64 `json:"overhead_pct"`
	// Workers is how many worker feeds the coordinator's federation folded
	// (dist-federated only).
	Workers int `json:"federated_workers,omitempty"`
	// Spans is how many spans the fleet trace retained (dist-federated
	// only).
	Spans int `json:"federated_spans,omitempty"`
}

// ObsReport is the BENCH_obs.json shape.
type ObsReport struct {
	Benchmark     string   `json:"benchmark"`
	Mode          string   `json:"mode"`
	Interleavings int      `json:"interleavings"`
	Runs          []ObsRun `json:"runs"`
}

// RunObs measures telemetry and federation overhead over a DFS slice of
// the Roshi-3 space. slice <= 0 uses DefaultObsSlice.
func RunObs(slice int) (*ObsReport, error) {
	if slice <= 0 {
		slice = DefaultObsSlice
	}
	bug, ok := bugs.ByName("Roshi-3")
	if !ok {
		return nil, fmt.Errorf("bench: Roshi-3 missing from the corpus")
	}
	report := &ObsReport{
		Benchmark:     bug.Name,
		Mode:          string(runner.ModeDFS),
		Interleavings: slice,
	}

	// Local engine: no registry vs a live registry.
	plain, err := runObsLocal(bug, slice, nil)
	if err != nil {
		return nil, err
	}
	plain.Config = "local-plain"
	instrumented, err := runObsLocal(bug, slice, telemetry.New())
	if err != nil {
		return nil, err
	}
	instrumented.Config = "local-telemetry"
	instrumented.OverheadPct = overheadPct(plain.Seconds, instrumented.Seconds)
	report.Runs = append(report.Runs, *plain, *instrumented)

	// Distributed engine: two silent workers vs two federating workers.
	spec := coordinator.JobSpec{
		Bug:              bug.Name,
		Mode:             string(runner.ModeDFS),
		MaxInterleavings: slice,
		RangeSize:        32,
	}
	silent, err := runObsDist(spec, 2, false)
	if err != nil {
		return nil, err
	}
	silent.Config = "dist-plain"
	federated, err := runObsDist(spec, 2, true)
	if err != nil {
		return nil, err
	}
	federated.Config = "dist-federated"
	federated.OverheadPct = overheadPct(silent.Seconds, federated.Seconds)
	report.Runs = append(report.Runs, *silent, *federated)
	return report, nil
}

// runObsLocal replays the slice through the sequential engine, with or
// without a telemetry registry attached.
func runObsLocal(bug *bugs.Benchmark, slice int, reg *telemetry.Registry) (*ObsRun, error) {
	scenario, err := bug.Build()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := runner.Run(scenario, runner.Config{
		Mode:             runner.ModeDFS,
		MaxInterleavings: slice,
		Workers:          1,
		Telemetry:        reg,
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	if res.Explored != slice {
		return nil, fmt.Errorf("bench: obs local explored %d, want %d", res.Explored, slice)
	}
	return &ObsRun{
		Explored:  res.Explored,
		Seconds:   elapsed.Seconds(),
		PerSecond: float64(res.Explored) / elapsed.Seconds(),
	}, nil
}

// runObsDist drives one job through a fresh coordinator with n in-process
// TCP workers. With federate set, the coordinator carries a registry and
// every worker reports its own registry on a tight interval, so the run
// exercises the full telemetry message path.
func runObsDist(spec coordinator.JobSpec, n int, federate bool) (*ObsRun, error) {
	root, err := os.MkdirTemp("", "erpi-bench-obs-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	opts := coordinator.Options{
		Addr:        "127.0.0.1:0",
		JournalRoot: root,
		LeaseTTL:    2 * time.Second,
	}
	if federate {
		opts.Telemetry = telemetry.New()
	}
	svc, err := coordinator.New(opts)
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	start := time.Now()
	job, err := svc.Submit(spec)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wo := coordinator.WorkerOptions{
				Addr: svc.Addr(),
				Name: fmt.Sprintf("obs-%d", i),
				Once: true,
			}
			if federate {
				wo.Telemetry = telemetry.New()
				wo.TelemetryInterval = 25 * time.Millisecond
			}
			_ = coordinator.RunWorker(ctx, wo)
		}(i)
	}
	select {
	case <-job.Done():
	case <-ctx.Done():
		return nil, fmt.Errorf("bench: obs workers=%d timed out (%+v)", n, job.Status())
	}
	elapsed := time.Since(start)
	// Once-workers exit on their own after msgDone; waiting for them (rather
	// than cancelling first) lets their final forced reports land, so the
	// federation accounts every executed range and span.
	wg.Wait()
	cancel()

	st := job.Status()
	if st.State != coordinator.StateDone {
		return nil, fmt.Errorf("bench: obs workers=%d ended %s: %s", n, st.State, st.Error)
	}
	if st.Explored != spec.MaxInterleavings {
		return nil, fmt.Errorf("bench: obs workers=%d explored %d, want %d", n, st.Explored, spec.MaxInterleavings)
	}
	run := &ObsRun{
		Explored:  st.Explored,
		Seconds:   elapsed.Seconds(),
		PerSecond: float64(st.Explored) / elapsed.Seconds(),
	}
	if federate {
		fed := svc.Federation()
		run.Workers = fed.Workers()
		if run.Workers != n {
			return nil, fmt.Errorf("bench: federation folded %d worker feeds, want %d", run.Workers, n)
		}
		for _, row := range fed.Progress().Workers {
			run.Spans += row.SpansRetained
		}
		if run.Spans == 0 {
			return nil, fmt.Errorf("bench: obs workers=%d federation retained no spans", n)
		}
	}
	return run, nil
}

// overheadPct is the wall-clock overhead of an instrumented run against
// its uninstrumented twin, in percent.
func overheadPct(base, instrumented float64) float64 {
	if base <= 0 {
		return 0
	}
	return (instrumented/base - 1) * 100
}

// WriteObsJSON writes the report as indented JSON to path (the CI
// artifact BENCH_obs.json).
func (r *ObsReport) WriteObsJSON(path string) error {
	return writeJSON(r, path)
}

// Render prints the report as a human-readable table.
func (r *ObsReport) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "observability overhead: %s, %s x %d interleavings\n", r.Benchmark, r.Mode, r.Interleavings)
	fmt.Fprintln(tw, "config\tinterleavings/s\toverhead\tfeeds\tspans")
	for _, run := range r.Runs {
		feeds, spans := "-", "-"
		if run.Workers > 0 {
			feeds = fmt.Sprintf("%d", run.Workers)
			spans = fmt.Sprintf("%d", run.Spans)
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%+.1f%%\t%s\t%s\n", run.Config, run.PerSecond, run.OverheadPct, feeds, spans)
	}
	return tw.Flush()
}
