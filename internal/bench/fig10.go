package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/datalog"
	"github.com/er-pi/erpi/internal/runner"
)

// Fig10Run is one run of the succeed-or-crash micro-benchmark (paper
// Figure 10): the OrbitDB-5 workload explored WITHOUT the 10K termination
// threshold; every explored interleaving is persisted in the deductive
// store, whose fact budget models the machine's memory. A run either
// reproduces the bug (✓) or exhausts the budget and crashes (✗).
type Fig10Run struct {
	Run      int
	Mode     runner.Mode
	Succeed  bool
	Explored int
	Duration time.Duration
}

// DefaultFig10Budget is the store budget in facts. An interleaving of the
// 24-event OrbitDB-5 workload costs 25 facts, so this admits ~2000
// persisted interleavings — far above ER-π's need and far below the
// baselines'.
const DefaultFig10Budget = 50000

// RunFig10 executes `runs` runs per mode; each run uses a distinct Rand
// seed (ER-π and DFS are deterministic, matching the paper's observation
// that their outcomes were stable across runs).
func RunFig10(runs int, budget int) ([]Fig10Run, error) {
	if runs <= 0 {
		runs = 5
	}
	if budget <= 0 {
		budget = DefaultFig10Budget
	}
	b, ok := bugs.ByName("OrbitDB-5")
	if !ok {
		return nil, fmt.Errorf("bench: OrbitDB-5 benchmark missing")
	}
	var out []Fig10Run
	for run := 1; run <= runs; run++ {
		for _, mode := range []runner.Mode{runner.ModeERPi, runner.ModeDFS, runner.ModeRand} {
			scenario, err := b.Build()
			if err != nil {
				return nil, err
			}
			asserts, err := b.NewAssertions()
			if err != nil {
				return nil, err
			}
			store := datalog.NewStore()
			store.MaxFacts = budget
			res, err := runner.Run(scenario, runner.Config{
				Mode:             mode,
				Seed:             int64(run), // varies Rand only
				MaxInterleavings: -1,         // unbounded: succeed or crash
				StopOnViolation:  true,
				Assertions:       asserts,
				Store:            store,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: fig10 %s run %d: %w", mode, run, err)
			}
			out = append(out, Fig10Run{
				Run:      run,
				Mode:     mode,
				Succeed:  res.FirstViolation > 0 && !res.Crashed,
				Explored: res.Explored,
				Duration: res.Duration,
			})
		}
	}
	return out, nil
}

// WriteFig10 renders the succeed-or-crash grid.
func WriteFig10(w io.Writer, rows []Fig10Run) error {
	if _, err := fmt.Fprintln(w, "Figure 10: succeed-or-crash micro-benchmark on OrbitDB-5 (✓ = reproduced, ✗ = resources exhausted)"); err != nil {
		return err
	}
	byRun := make(map[int]map[runner.Mode]Fig10Run)
	maxRun := 0
	for _, r := range rows {
		if byRun[r.Run] == nil {
			byRun[r.Run] = make(map[runner.Mode]Fig10Run)
		}
		byRun[r.Run][r.Mode] = r
		if r.Run > maxRun {
			maxRun = r.Run
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Run\tER-π\tDFS\tRand")
	for run := 1; run <= maxRun; run++ {
		line := fmt.Sprintf("run%d", run)
		for _, mode := range []runner.Mode{runner.ModeERPi, runner.ModeDFS, runner.ModeRand} {
			r := byRun[run][mode]
			mark := "✗"
			if r.Succeed {
				mark = "✓"
			}
			line += fmt.Sprintf("\t%s (%d ils)", mark, r.Explored)
		}
		fmt.Fprintln(tw, line)
	}
	return tw.Flush()
}
