package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"testing"
	"text/tabwriter"
	"time"

	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/telemetry"
)

// Incremental snapshot hashing benchmark (DESIGN.md §4.15). The replay
// hot path fingerprints the cluster at every frontier check — prefix
// cache captures and subsumption lookups both need the canonical state
// digest after il[:depth]. Version-keyed per-replica caches make that
// O(dirty replicas): a frontier check re-serializes only replicas
// mutated since the previous check and composes the digest from cached
// per-replica hashes. This benchmark measures exactly that path with a
// differential design: one "pass" replays a DFS exploration unit — the
// genesis walk of Roshi-3's trigger interleaving with a frontier check
// after every event, then the sibling sweep DFS actually performs at the
// log's tail (restore the shared prefix, replay each permutation of the
// final three events, checking every suffix depth) — and the pass is
// timed three ways: replay only (baseline), replay + checks with
// incremental hashing, and replay + checks with FullSnapshotHashing.
// Subtracting the baseline isolates the snapshot+hash cost from apply
// and restore work that both hashing modes pay identically.
//
// The soundness half pins that the optimization is pure mechanics: a
// lockstep pass asserts the two modes produce byte-identical digests at
// every frontier, and two full engine runs (DFS, Workers 1, prefix cache
// + subsumption on) must agree on the deduplicated outcome-signature
// digest, the explored count, and the exact subsumed count — the latter
// is only possible if every context hash matches bit for bit.

// DefaultHashSlice is how many DFS interleavings the engine-parity half
// replays per hashing mode.
const DefaultHashSlice = 512

// hashEngineCacheBytes / hashEngineTableBytes are the prefix-cache and
// subsumption-table budgets of the engine-parity runs — generous enough
// that neither evicts on the Roshi-3 slice, so the runs exercise both
// hash consumers at full cadence.
const (
	hashEngineCacheBytes = 4 << 20
	hashEngineTableBytes = 1 << 20
)

// HashMicro is one timed variant of the replay pass.
type HashMicro struct {
	// Mode is "replay-only", "incremental", or "full".
	Mode      string  `json:"mode"`
	NsPerPass float64 `json:"ns_per_pass"`
	// AllocsPerPass / BytesPerPass come from the Go allocator, per pass.
	AllocsPerPass float64 `json:"allocs_per_pass"`
	BytesPerPass  float64 `json:"bytes_per_pass"`
	// HashNsPerPass etc. are the baseline-subtracted figures: the cost
	// attributable to snapshot+hash alone (zero for the baseline row).
	HashNsPerPass     float64 `json:"hash_ns_per_pass"`
	HashAllocsPerPass float64 `json:"hash_allocs_per_pass"`
	HashBytesPerPass  float64 `json:"hash_bytes_per_pass"`
}

// HashEngine is the end-to-end parity half: identical DFS slices with
// incremental hashing on and off must be observationally identical.
type HashEngine struct {
	Interleavings      int     `json:"interleavings"`
	IncrementalSeconds float64 `json:"incremental_seconds"`
	FullSeconds        float64 `json:"full_seconds"`
	// Speedup is full over incremental wall time for the whole run —
	// diluted by apply/restore/assert work, so it is context, not the
	// headline (the micro figures isolate the hash path).
	Speedup float64 `json:"speedup"`
	// DirtyReplicas / BytesReused are the incremental run's
	// snapshot.dirty_replicas and snapshot.bytes_reused counters;
	// FullDirtyReplicas is what the same slice re-serialized with the
	// caches disabled.
	DirtyReplicas     int64 `json:"dirty_replicas"`
	FullDirtyReplicas int64 `json:"full_dirty_replicas"`
	BytesReused       int64 `json:"bytes_reused"`
	// SerializeReduction is FullDirtyReplicas / DirtyReplicas — how many
	// times fewer replica serializations the incremental path performed.
	SerializeReduction float64 `json:"serialize_reduction"`
	// The determinism pins: equal signature sets, explored counts, and
	// (Workers 1, so the skip set is deterministic) subsumed counts.
	IdenticalSignatures bool   `json:"identical_signatures"`
	ExploredParity      bool   `json:"explored_parity"`
	SubsumedParity      bool   `json:"subsumed_parity"`
	Subsumed            int    `json:"subsumed"`
	SignatureDigest     string `json:"signature_digest"`
}

// HashReport is the BENCH_hash.json shape.
type HashReport struct {
	Benchmark string `json:"benchmark"`
	Replicas  int    `json:"replicas"`
	Events    int    `json:"events"`
	// FrontierChecks is how many snapshot+hash points one pass contains.
	FrontierChecks int        `json:"frontier_checks_per_pass"`
	Baseline       HashMicro  `json:"baseline"`
	Incremental    HashMicro  `json:"incremental"`
	Full           HashMicro  `json:"full"`
	TimeReduction  float64    `json:"time_reduction"`
	AllocReduction float64    `json:"alloc_reduction"`
	Engine         HashEngine `json:"engine"`
}

// hashSink defeats dead-code elimination of the benchmarked digests.
var hashSink byte

// tailPerms enumerates the orders of a 3-event tail; the first is the
// trigger's own order (walked from genesis), the rest are the siblings
// DFS enumerates off the shared depth-(n-3) prefix.
var tailPerms = [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}

// hashReplayer replays trigger interleavings of a scenario log at the
// replica layer, with the executor's delivery semantics (update/observe
// apply, sync-send payload capture, sync-exec delivery, failed ops skip).
type hashReplayer struct {
	cluster *replica.Cluster
	log     *event.Log
	sendFor map[event.ID]event.ID
	pending map[event.ID][]byte
}

func newHashReplayer(cluster *replica.Cluster, log *event.Log) *hashReplayer {
	r := &hashReplayer{
		cluster: cluster,
		log:     log,
		sendFor: make(map[event.ID]event.ID),
		pending: make(map[event.ID][]byte),
	}
	for _, pair := range log.SyncPairs() {
		r.sendFor[pair[1]] = pair[0]
	}
	return r
}

func (r *hashReplayer) deliver(id event.ID) error {
	ev := r.log.Event(id)
	node, err := r.cluster.Node(ev.Replica)
	if err != nil {
		return err
	}
	switch ev.Kind {
	case event.Update, event.Observe:
		if _, err := node.State.Apply(replica.Op{Name: ev.Op, Args: ev.Args}); err != nil && !errors.Is(err, replica.ErrFailedOp) {
			return fmt.Errorf("event %s: %w", ev, err)
		}
	case event.SyncSend:
		payload, err := node.State.SyncPayload()
		if err != nil {
			return fmt.Errorf("event %s: %w", ev, err)
		}
		r.pending[id] = payload
	case event.SyncExec:
		payload, ok := r.pending[r.sendFor[id]]
		if !ok {
			sender, err := r.cluster.Node(ev.From)
			if err != nil {
				return err
			}
			if payload, err = sender.State.SyncPayload(); err != nil {
				return fmt.Errorf("event %s: %w", ev, err)
			}
		}
		if err := node.State.ApplySync(payload); err != nil && !errors.Is(err, replica.ErrFailedOp) {
			return fmt.Errorf("event %s: %w", ev, err)
		}
	default:
		return fmt.Errorf("event %s: unsupported kind", ev)
	}
	return nil
}

// check is one frontier check: canonical snapshot plus cluster digest,
// the exact work a prefix-cache capture or subsumption lookup performs
// per snapshot depth.
func (r *hashReplayer) check() error {
	snap, err := r.cluster.CanonicalSnapshot()
	if err != nil {
		return err
	}
	h := snap.Hash()
	hashSink ^= h[0]
	return nil
}

// pass replays one DFS exploration unit: the genesis walk of trigger
// with a frontier check after every event, then the tail sibling sweep —
// restore the depth-(n-3) prefix and replay the five remaining
// permutations of the final three events, checking each suffix depth.
// checks=false is the differential baseline (identical replay, no
// snapshot+hash work).
func (r *hashReplayer) pass(trigger []event.ID, checks bool) error {
	if err := r.cluster.Reset(); err != nil {
		return err
	}
	clear(r.pending)
	split := len(trigger) - 3
	var prefix *replica.ClusterSnapshot
	for pos, id := range trigger {
		if pos == split {
			snap, err := r.cluster.CanonicalSnapshot()
			if err != nil {
				return err
			}
			prefix = snap
		}
		if err := r.deliver(id); err != nil {
			return err
		}
		if checks {
			if err := r.check(); err != nil {
				return err
			}
		}
	}
	tail := trigger[split:]
	for _, perm := range tailPerms[1:] {
		if err := r.cluster.RestoreSnapshot(prefix); err != nil {
			return err
		}
		for _, i := range perm {
			if err := r.deliver(tail[i]); err != nil {
				return err
			}
			if checks {
				if err := r.check(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// RunHash measures the incremental snapshot+hash path on Roshi-3: the
// differential micro benchmark (baseline / incremental / full passes),
// the lockstep digest-parity pass, and the engine-level determinism pins.
// slice <= 0 uses DefaultHashSlice for the engine half.
func RunHash(slice int) (*HashReport, error) {
	if slice <= 0 {
		slice = DefaultHashSlice
	}
	bug, ok := bugs.ByName("Roshi-3")
	if !ok {
		return nil, fmt.Errorf("bench: Roshi-3 missing from the corpus")
	}
	scenario, err := bug.Build()
	if err != nil {
		return nil, err
	}
	trigger := bug.Trigger
	if len(trigger) < 4 {
		return nil, fmt.Errorf("bench: %s trigger too short for a tail sweep", bug.Name)
	}
	if err := lockstepDigestParity(scenario, trigger); err != nil {
		return nil, err
	}

	report := &HashReport{
		Benchmark: bug.Name,
		Replicas:  len(scenario.Log.Replicas()),
		Events:    scenario.Log.Len(),
		// Genesis walk checks every depth; the sweep checks the three
		// suffix depths of each of the five sibling permutations.
		FrontierChecks: scenario.Log.Len() + 3*(len(tailPerms)-1),
	}

	measure := func(mode string, full, checks bool) (HashMicro, error) {
		cluster, err := scenario.NewCluster()
		if err != nil {
			return HashMicro{}, err
		}
		cluster.SetFullHashing(full)
		if err := cluster.Checkpoint(); err != nil {
			return HashMicro{}, err
		}
		r := newHashReplayer(cluster, scenario.Log)
		if err := r.pass(trigger, checks); err != nil { // warm caches and pools
			return HashMicro{}, err
		}
		var passErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := r.pass(trigger, checks); err != nil {
					passErr = err
					b.FailNow()
				}
			}
		})
		if passErr != nil {
			return HashMicro{}, passErr
		}
		return HashMicro{
			Mode:          mode,
			NsPerPass:     float64(res.NsPerOp()),
			AllocsPerPass: float64(res.AllocsPerOp()),
			BytesPerPass:  float64(res.AllocedBytesPerOp()),
		}, nil
	}

	if report.Baseline, err = measure("replay-only", false, false); err != nil {
		return nil, err
	}
	if report.Incremental, err = measure("incremental", false, true); err != nil {
		return nil, err
	}
	if report.Full, err = measure("full", true, true); err != nil {
		return nil, err
	}
	diff := func(m *HashMicro) {
		m.HashNsPerPass = max(m.NsPerPass-report.Baseline.NsPerPass, 0)
		m.HashAllocsPerPass = max(m.AllocsPerPass-report.Baseline.AllocsPerPass, 0)
		m.HashBytesPerPass = max(m.BytesPerPass-report.Baseline.BytesPerPass, 0)
	}
	diff(&report.Incremental)
	diff(&report.Full)
	if report.Incremental.HashNsPerPass > 0 {
		report.TimeReduction = report.Full.HashNsPerPass / report.Incremental.HashNsPerPass
	}
	if report.Incremental.HashAllocsPerPass > 0 {
		report.AllocReduction = report.Full.HashAllocsPerPass / report.Incremental.HashAllocsPerPass
	}

	engine, err := hashEngineParity(bug, slice)
	if err != nil {
		return nil, err
	}
	report.Engine = *engine
	return report, nil
}

// lockstepDigestParity replays the trigger on two clusters — incremental
// and FullSnapshotHashing — asserting byte-identical cluster digests at
// every frontier. This is the soundness pin the micro numbers rest on:
// the two modes race the exact same function.
func lockstepDigestParity(scenario runner.Scenario, trigger []event.ID) error {
	clusters := make([]*replica.Cluster, 2)
	replayers := make([]*hashReplayer, 2)
	for i, full := range []bool{false, true} {
		cluster, err := scenario.NewCluster()
		if err != nil {
			return err
		}
		cluster.SetFullHashing(full)
		if err := cluster.Checkpoint(); err != nil {
			return err
		}
		clusters[i] = cluster
		replayers[i] = newHashReplayer(cluster, scenario.Log)
	}
	for pos, id := range trigger {
		hashes := make([][32]byte, 2)
		for i := range replayers {
			if err := replayers[i].deliver(id); err != nil {
				return err
			}
			snap, err := clusters[i].CanonicalSnapshot()
			if err != nil {
				return err
			}
			hashes[i] = snap.Hash()
		}
		if hashes[0] != hashes[1] {
			return fmt.Errorf("bench: digest parity broken at depth %d: incremental %x vs full %x",
				pos+1, hashes[0][:4], hashes[1][:4])
		}
	}
	return nil
}

// hashEngineParity runs the same DFS slice with incremental hashing on
// and off (Workers 1, prefix cache + subsumption engaged) and pins the
// observational equalities plus the telemetry-visible serialization
// savings.
func hashEngineParity(bug *bugs.Benchmark, slice int) (*HashEngine, error) {
	type engineRun struct {
		res     *runner.Result
		sigs    map[string]struct{}
		snap    telemetry.Snapshot
		elapsed time.Duration
	}
	run := func(full bool) (*engineRun, error) {
		scenario, err := bug.Build()
		if err != nil {
			return nil, err
		}
		reg := telemetry.New()
		sigs := make(map[string]struct{})
		start := time.Now()
		res, err := runner.Run(scenario, runner.Config{
			Mode:                runner.ModeDFS,
			Workers:             1,
			MaxInterleavings:    slice,
			PrefixCacheBytes:    hashEngineCacheBytes,
			SubsumptionTable:    hashEngineTableBytes,
			FullSnapshotHashing: full,
			Telemetry:           reg,
			OnOutcome: func(o *runner.Outcome) {
				sigs[runner.OutcomeSignature(o)] = struct{}{}
			},
		})
		if err != nil {
			return nil, err
		}
		return &engineRun{res: res, sigs: sigs, snap: reg.Snapshot(), elapsed: time.Since(start)}, nil
	}
	inc, err := run(false)
	if err != nil {
		return nil, err
	}
	full, err := run(true)
	if err != nil {
		return nil, err
	}
	engine := &HashEngine{
		Interleavings:       slice,
		IncrementalSeconds:  inc.elapsed.Seconds(),
		FullSeconds:         full.elapsed.Seconds(),
		DirtyReplicas:       inc.snap.Counters["snapshot.dirty_replicas"],
		FullDirtyReplicas:   full.snap.Counters["snapshot.dirty_replicas"],
		BytesReused:         inc.snap.Counters["snapshot.bytes_reused"],
		IdenticalSignatures: signatureSetDigest(inc.sigs) == signatureSetDigest(full.sigs),
		ExploredParity:      inc.res.Explored == full.res.Explored,
		SubsumedParity:      inc.res.Subsumed == full.res.Subsumed,
		Subsumed:            inc.res.Subsumed,
		SignatureDigest:     signatureSetDigest(inc.sigs),
	}
	if inc.elapsed > 0 {
		engine.Speedup = full.elapsed.Seconds() / inc.elapsed.Seconds()
	}
	if engine.DirtyReplicas > 0 {
		engine.SerializeReduction = float64(engine.FullDirtyReplicas) / float64(engine.DirtyReplicas)
	}
	if !engine.IdenticalSignatures || !engine.ExploredParity || !engine.SubsumedParity {
		return nil, fmt.Errorf("bench: hashing modes diverged: identical_sigs=%v explored=%v subsumed=%v",
			engine.IdenticalSignatures, engine.ExploredParity, engine.SubsumedParity)
	}
	return engine, nil
}

// WriteHashJSON writes the report as indented JSON to path (the CI
// artifact BENCH_hash.json).
func (r *HashReport) WriteHashJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the report as a human-readable table.
func (r *HashReport) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "incremental snapshot hashing: %s, %d replicas, %d events, %d frontier checks/pass\n",
		r.Benchmark, r.Replicas, r.Events, r.FrontierChecks)
	fmt.Fprintln(tw, "mode\tns/pass\tallocs/pass\thash ns/pass\thash allocs/pass")
	row := func(m HashMicro) {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%.0f\n",
			m.Mode, m.NsPerPass, m.AllocsPerPass, m.HashNsPerPass, m.HashAllocsPerPass)
	}
	row(r.Baseline)
	row(r.Incremental)
	row(r.Full)
	fmt.Fprintf(tw, "snapshot+hash time reduction\t%.2fx\n", r.TimeReduction)
	fmt.Fprintf(tw, "hash-path alloc reduction\t%.2fx\n", r.AllocReduction)
	e := r.Engine
	fmt.Fprintf(tw, "engine parity (%d DFS interleavings)\tspeedup %.2fx\tserialize reduction %.2fx\tbytes reused %d\n",
		e.Interleavings, e.Speedup, e.SerializeReduction, e.BytesReused)
	fmt.Fprintf(tw, "determinism pins\tidentical sigs %v\texplored parity %v\tsubsumed parity %v (%d subsumed)\n",
		e.IdenticalSignatures, e.ExploredParity, e.SubsumedParity, e.Subsumed)
	return tw.Flush()
}
