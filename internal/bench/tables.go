package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/miscon"
	"github.com/er-pi/erpi/internal/runner"
)

// Table1Row is one bug-benchmark inventory row plus its reproduction
// result under ER-π.
type Table1Row struct {
	Name       string
	Issue      int
	Events     int
	Status     string
	Reason     string
	Reproduced bool
	// At is the 1-based interleaving index of the reproduction.
	At int
}

// RunTable1 regenerates the paper's Table 1, reproducing each bug under
// ER-π's pruned exploration.
func RunTable1() ([]Table1Row, error) {
	var out []Table1Row
	for _, b := range bugs.All() {
		scenario, err := b.Build()
		if err != nil {
			return nil, err
		}
		asserts, err := b.NewAssertions()
		if err != nil {
			return nil, err
		}
		res, err := runner.Run(scenario, runner.Config{
			Mode:            runner.ModeERPi,
			StopOnViolation: true,
			Assertions:      asserts,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: table1 %s: %w", b.Name, err)
		}
		out = append(out, Table1Row{
			Name:       b.Name,
			Issue:      b.Issue,
			Events:     b.Events,
			Status:     b.Status,
			Reason:     b.Reason,
			Reproduced: res.FirstViolation > 0,
			At:         res.FirstViolation,
		})
	}
	return out, nil
}

// WriteTable1 renders Table 1.
func WriteTable1(w io.Writer, rows []Table1Row) error {
	if _, err := fmt.Fprintln(w, "Table 1: bug benchmarks"); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "BugName\tIssue#\t#Events\tStatus\tReason\tReproduced(at)")
	for _, r := range rows {
		repro := "no"
		if r.Reproduced {
			repro = fmt.Sprintf("yes (#%d)", r.At)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%s\n",
			r.Name, r.Issue, r.Events, r.Status, r.Reason, repro)
	}
	return tw.Flush()
}

// Table2Cell is one (subject, misconception) detection result.
type Table2Cell struct {
	Subject       string
	Misconception int
	Detected      bool
	At            int
}

// RunTable2 regenerates the paper's Table 2 by running every covered
// misconception scenario to first detection.
func RunTable2() ([]Table2Cell, error) {
	var out []Table2Cell
	for _, sc := range miscon.All() {
		s, err := sc.Build()
		if err != nil {
			return nil, err
		}
		res, err := runner.Run(s, runner.Config{
			Mode:             runner.ModeERPi,
			MaxInterleavings: 2000,
			StopOnViolation:  true,
			Assertions:       sc.NewAssertions(),
		})
		if err != nil {
			return nil, fmt.Errorf("bench: table2 %s: %w", sc.Name(), err)
		}
		out = append(out, Table2Cell{
			Subject:       sc.Subject,
			Misconception: sc.Misconception,
			Detected:      res.FirstViolation > 0,
			At:            res.FirstViolation,
		})
	}
	return out, nil
}

// WriteTable2 renders the detection matrix.
func WriteTable2(w io.Writer, cells []Table2Cell) error {
	if _, err := fmt.Fprintln(w, "Table 2: recognizing misconceptions with ER-π (✓ = detected)"); err != nil {
		return err
	}
	detected := make(map[string]map[int]bool)
	for _, c := range cells {
		if detected[c.Subject] == nil {
			detected[c.Subject] = make(map[int]bool)
		}
		detected[c.Subject][c.Misconception] = c.Detected
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Subject\t#1\t#2\t#3\t#4\t#5")
	for _, subject := range miscon.Subjects() {
		row := subject
		for m := 1; m <= 5; m++ {
			mark := ""
			if detected[subject][m] {
				mark = "✓"
			}
			row += "\t" + mark
		}
		fmt.Fprintln(tw, row)
	}
	return tw.Flush()
}
