// Package bench regenerates every table and figure of the paper's
// evaluation (§6): Table 1 (bug benchmarks), Table 2 (misconception
// detection), Figure 8a/8b (interleavings and time to reproduce each bug
// under ER-π, DFS, and Rand), Figure 9 (per-algorithm pruning
// contributions), and Figure 10 (the succeed-or-crash micro-benchmark).
package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/runner"
)

// Cap is the paper's exploration threshold (§6.3: "we terminated the
// experiment after exploring 10K interleavings").
const Cap = 10000

// Fig8Row is one bug × mode measurement.
type Fig8Row struct {
	Bug  string
	Mode runner.Mode
	// Interleavings is the count explored until the first violation; when
	// Reproduced is false it is the cap.
	Interleavings int
	// Reproduced reports whether the bug was found under the cap.
	Reproduced bool
	// Duration is the wall-clock exploration time.
	Duration time.Duration
}

// Fig8Result holds the full Figure 8 data set.
type Fig8Result struct {
	Rows []Fig8Row
}

// RunFig8 reproduces each Table-1 bug in the three modes of §6.3.
// maxInterleavings <= 0 uses the paper's 10K cap; seed drives Rand.
func RunFig8(maxInterleavings int, seed int64, names ...string) (*Fig8Result, error) {
	if maxInterleavings <= 0 {
		maxInterleavings = Cap
	}
	var selected []*bugs.Benchmark
	if len(names) == 0 {
		selected = bugs.All()
	} else {
		for _, name := range names {
			b, ok := bugs.ByName(name)
			if !ok {
				return nil, fmt.Errorf("bench: unknown bug %q", name)
			}
			selected = append(selected, b)
		}
	}
	out := &Fig8Result{}
	for _, b := range selected {
		for _, mode := range []runner.Mode{runner.ModeERPi, runner.ModeDFS, runner.ModeRand} {
			scenario, err := b.Build()
			if err != nil {
				return nil, err
			}
			asserts, err := b.NewAssertions()
			if err != nil {
				return nil, err
			}
			res, err := runner.Run(scenario, runner.Config{
				Mode:             mode,
				Seed:             seed,
				MaxInterleavings: maxInterleavings,
				StopOnViolation:  true,
				Assertions:       asserts,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s: %w", b.Name, mode, err)
			}
			row := Fig8Row{
				Bug:      b.Name,
				Mode:     mode,
				Duration: res.Duration,
			}
			if res.FirstViolation > 0 {
				row.Reproduced = true
				row.Interleavings = res.FirstViolation
			} else {
				row.Interleavings = res.Explored
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Aggregates computes the paper's §6.3 summary numbers: the average factor
// by which ER-π reduces interleavings and time versus DFS and Rand
// (computed over the bugs every compared mode reproduced).
type Aggregates struct {
	InterleavingsVsDFS  float64
	InterleavingsVsRand float64
	TimeVsDFS           float64
	TimeVsRand          float64
}

// Aggregates derives the §6.3 ratios from the Figure 8 data.
func (r *Fig8Result) Aggregates() Aggregates {
	byBug := make(map[string]map[runner.Mode]Fig8Row)
	for _, row := range r.Rows {
		if byBug[row.Bug] == nil {
			byBug[row.Bug] = make(map[runner.Mode]Fig8Row)
		}
		byBug[row.Bug][row.Mode] = row
	}
	ratio := func(other runner.Mode, time bool) float64 {
		var sum float64
		var n int
		for _, modes := range byBug {
			erpi, okE := modes[runner.ModeERPi]
			cmp, okC := modes[other]
			if !okE || !okC || !erpi.Reproduced {
				continue
			}
			// A mode that failed contributes its cap (a lower bound), as
			// in the paper's figures.
			var num, den float64
			if time {
				num, den = float64(cmp.Duration), float64(erpi.Duration)
			} else {
				num, den = float64(cmp.Interleavings), float64(erpi.Interleavings)
			}
			if den <= 0 {
				continue
			}
			sum += num / den
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	return Aggregates{
		InterleavingsVsDFS:  ratio(runner.ModeDFS, false),
		InterleavingsVsRand: ratio(runner.ModeRand, false),
		TimeVsDFS:           ratio(runner.ModeDFS, true),
		TimeVsRand:          ratio(runner.ModeRand, true),
	}
}

// WriteFig8a renders the interleavings-to-reproduce table (log10 noted, as
// in the paper's figure).
func (r *Fig8Result) WriteFig8a(w io.Writer) error {
	return r.write(w, "Figure 8a: interleavings to reproduce each bug (cap 10K, ↑ = not reproduced)",
		func(row Fig8Row) string {
			mark := ""
			if !row.Reproduced {
				mark = "↑"
			}
			return fmt.Sprintf("%d%s (log10=%.2f)", row.Interleavings, mark, log10(row.Interleavings))
		})
}

// WriteFig8b renders the time-to-reproduce table.
func (r *Fig8Result) WriteFig8b(w io.Writer) error {
	return r.write(w, "Figure 8b: time to reproduce each bug (↑ = not reproduced)",
		func(row Fig8Row) string {
			mark := ""
			if !row.Reproduced {
				mark = "↑"
			}
			return fmt.Sprintf("%v%s", row.Duration.Round(time.Microsecond), mark)
		})
}

func (r *Fig8Result) write(w io.Writer, title string, cell func(Fig8Row) string) error {
	if _, err := fmt.Fprintln(w, title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Bug\tER-π\tDFS\tRand")
	byBug := make(map[string]map[runner.Mode]Fig8Row)
	var order []string
	for _, row := range r.Rows {
		if byBug[row.Bug] == nil {
			byBug[row.Bug] = make(map[runner.Mode]Fig8Row)
			order = append(order, row.Bug)
		}
		byBug[row.Bug][row.Mode] = row
	}
	for _, bug := range order {
		modes := byBug[bug]
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", bug,
			cell(modes[runner.ModeERPi]), cell(modes[runner.ModeDFS]), cell(modes[runner.ModeRand]))
	}
	return tw.Flush()
}

func log10(n int) float64 {
	if n <= 0 {
		return 0
	}
	return math.Log10(float64(n))
}

// Render returns the full Figure 8 report as a string.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	_ = r.WriteFig8a(&b)
	b.WriteString("\n")
	_ = r.WriteFig8b(&b)
	agg := r.Aggregates()
	fmt.Fprintf(&b, "\nAggregates (paper §6.3: ≈5.6× / ≈7.4× interleavings, ≈2.78× / ≈4.38× time):\n")
	fmt.Fprintf(&b, "  interleavings vs DFS  %.2fx\n", agg.InterleavingsVsDFS)
	fmt.Fprintf(&b, "  interleavings vs Rand %.2fx\n", agg.InterleavingsVsRand)
	fmt.Fprintf(&b, "  time vs DFS           %.2fx\n", agg.TimeVsDFS)
	fmt.Fprintf(&b, "  time vs Rand          %.2fx\n", agg.TimeVsRand)
	return b.String()
}
