package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/prune"
)

// Fig9Row reports one pruning algorithm's individual contribution to the
// reduction of the interleaving count for one bug benchmark (paper
// Figure 9). Reduction is (raw n!)/(surviving interleavings); Exact
// reports whether the surviving count was enumerated or sampled.
type Fig9Row struct {
	Bug       string
	Stage     prune.AblationStage
	Reduction float64
	Exact     bool
}

// RunFig9 measures per-algorithm contributions for every bug benchmark.
// sampleSize tunes the sampling estimator used for spaces too large to
// enumerate (default 20000 when <= 0).
func RunFig9(sampleSize int, seed int64) ([]Fig9Row, error) {
	if sampleSize <= 0 {
		sampleSize = 20000
	}
	var out []Fig9Row
	for _, b := range bugs.All() {
		scenario, err := b.Build()
		if err != nil {
			return nil, err
		}
		results, err := prune.Ablate(scenario.Log, scenario.Pruning, sampleSize, seed)
		if err != nil {
			return nil, fmt.Errorf("bench: fig9 %s: %w", b.Name, err)
		}
		for _, r := range results {
			out = append(out, Fig9Row{
				Bug:       b.Name,
				Stage:     r.Stage,
				Reduction: r.Reduction,
				Exact:     r.Count.Exact,
			})
		}
	}
	return out, nil
}

// WriteFig9 renders the contribution table (one row per bug, one column
// per algorithm; blank = the benchmark does not use that algorithm).
func WriteFig9(w io.Writer, rows []Fig9Row) error {
	if _, err := fmt.Fprintln(w, "Figure 9: individual algorithm contribution to interleaving reduction (n!/surviving; ~ = sampled)"); err != nil {
		return err
	}
	stages := []prune.AblationStage{
		prune.StageGrouping, prune.StageReplica, prune.StageIndependence, prune.StageFailedOps,
	}
	byBug := make(map[string]map[prune.AblationStage]Fig9Row)
	var order []string
	for _, r := range rows {
		if byBug[r.Bug] == nil {
			byBug[r.Bug] = make(map[prune.AblationStage]Fig9Row)
			order = append(order, r.Bug)
		}
		// Several filters of the same stage fold into the strongest.
		if cur, ok := byBug[r.Bug][r.Stage]; !ok || r.Reduction > cur.Reduction {
			byBug[r.Bug][r.Stage] = r
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Bug\tgrouping\treplica-specific\tindependence\tfailed-ops")
	for _, bug := range order {
		line := bug
		for _, stage := range stages {
			r, ok := byBug[bug][stage]
			if !ok {
				line += "\t—"
				continue
			}
			approx := ""
			if !r.Exact {
				approx = "~"
			}
			line += fmt.Sprintf("\t%s%.3gx", approx, r.Reduction)
		}
		fmt.Fprintln(tw, line)
	}
	return tw.Flush()
}
