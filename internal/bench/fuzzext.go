package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/runner"
)

// FuzzExtRow compares the greybox fuzzing extension against the Rand
// baseline on one bug and seed.
type FuzzExtRow struct {
	Bug  string
	Seed int64
	// FuzzAt / RandAt are interleavings-to-reproduce (cap when not
	// reproduced).
	FuzzAt, RandAt       int
	FuzzFound, RandFound bool
}

// RandHardBugs are the benchmarks the uniform Rand baseline cannot crack
// within the paper's 10K cap (Figure 8a).
var RandHardBugs = []string{"Roshi-3", "OrbitDB-4", "OrbitDB-5", "Yorkie-2"}

// RunFuzzExt measures the §8 fuzzing extension on the Rand-hard bugs over
// `seeds` seeds per bug.
func RunFuzzExt(seeds int, cap int) ([]FuzzExtRow, error) {
	if seeds <= 0 {
		seeds = 3
	}
	if cap <= 0 {
		cap = Cap
	}
	var out []FuzzExtRow
	for _, name := range RandHardBugs {
		b, ok := bugs.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown bug %q", name)
		}
		for seed := int64(1); seed <= int64(seeds); seed++ {
			row := FuzzExtRow{Bug: name, Seed: seed}
			for _, mode := range []runner.Mode{runner.ModeFuzz, runner.ModeRand} {
				scenario, err := b.Build()
				if err != nil {
					return nil, err
				}
				asserts, err := b.NewAssertions()
				if err != nil {
					return nil, err
				}
				res, err := runner.Run(scenario, runner.Config{
					Mode:             mode,
					Seed:             seed,
					MaxInterleavings: cap,
					StopOnViolation:  true,
					Assertions:       asserts,
				})
				if err != nil {
					return nil, fmt.Errorf("bench: fuzzext %s/%s: %w", name, mode, err)
				}
				at, found := res.Explored, res.FirstViolation > 0
				if found {
					at = res.FirstViolation
				}
				if mode == runner.ModeFuzz {
					row.FuzzAt, row.FuzzFound = at, found
				} else {
					row.RandAt, row.RandFound = at, found
				}
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// WriteFuzzExt renders the comparison.
func WriteFuzzExt(w io.Writer, rows []FuzzExtRow) error {
	if _, err := fmt.Fprintln(w, "Extension: coverage-guided fuzzing vs Rand on the Rand-hard bugs (↑ = not reproduced)"); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Bug\tSeed\tFuzz\tRand")
	cell := func(at int, found bool) string {
		if found {
			return fmt.Sprintf("%d", at)
		}
		return fmt.Sprintf("%d↑", at)
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", r.Bug, r.Seed,
			cell(r.FuzzAt, r.FuzzFound), cell(r.RandAt, r.RandFound))
	}
	return tw.Flush()
}
