package event

import (
	"strings"
	"testing"
	"testing/quick"
)

func upd(r ReplicaID, op string) Event {
	return Event{Kind: Update, Replica: r, Op: op}
}

func syncSend(from, to ReplicaID, carries ...ID) Event {
	return Event{Kind: SyncSend, Replica: from, From: from, To: to, Carries: carries}
}

func syncExec(from, to ReplicaID, carries ...ID) Event {
	return Event{Kind: SyncExec, Replica: to, From: from, To: to, Carries: carries}
}

func observe(r ReplicaID, op string) Event {
	return Event{Kind: Observe, Replica: r, Op: op}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Update:   "update",
		SyncSend: "sync_req",
		SyncExec: "exec_sync",
		Observe:  "observe",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
		parsed, err := ParseKind(want)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", want, err)
		}
		if parsed != k {
			t.Errorf("ParseKind(%q) = %v, want %v", want, parsed, k)
		}
	}
	if Kind(0).Valid() {
		t.Error("zero Kind must be invalid")
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) should fail")
	}
}

func TestEventValidate(t *testing.T) {
	tests := []struct {
		name    string
		ev      Event
		wantErr string
	}{
		{"valid update", Event{Kind: Update, Replica: "A"}, ""},
		{"valid observe", Event{Kind: Observe, Replica: "A"}, ""},
		{"valid sync send", Event{Kind: SyncSend, Replica: "A", From: "A", To: "B"}, ""},
		{"valid sync exec", Event{Kind: SyncExec, Replica: "B", From: "A", To: "B"}, ""},
		{"zero kind", Event{Replica: "A"}, "invalid kind"},
		{"missing replica", Event{Kind: Update}, "missing replica"},
		{"sync without endpoints", Event{Kind: SyncSend, Replica: "A"}, "requires from and to"},
		{"sync to self", Event{Kind: SyncSend, Replica: "A", From: "A", To: "A"}, "to itself"},
		{"send at wrong replica", Event{Kind: SyncSend, Replica: "B", From: "A", To: "B"}, "must execute at sender"},
		{"exec at wrong replica", Event{Kind: SyncExec, Replica: "A", From: "A", To: "B"}, "must execute at receiver"},
		{"update with endpoints", Event{Kind: Update, Replica: "A", From: "A", To: "B"}, "must not carry"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.ev.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestEventTouches(t *testing.T) {
	send := syncSend("A", "B")
	exec := syncExec("A", "B")
	if !send.Touches("A") || send.Touches("B") {
		t.Error("sync_req touches only the sender")
	}
	if !exec.Touches("B") {
		t.Error("exec_sync touches the receiver")
	}
	if exec.Touches("C") {
		t.Error("exec_sync must not touch an unrelated replica")
	}
}

func TestNewLogAssignsIDsAndLamport(t *testing.T) {
	log, err := NewLog([]Event{upd("A", "x"), upd("B", "y"), observe("A", "read")})
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", log.Len())
	}
	for i, ev := range log.Events() {
		if ev.ID != ID(i) {
			t.Errorf("event %d has ID %d", i, ev.ID)
		}
		if ev.Lamport != uint64(i+1) {
			t.Errorf("event %d has Lamport %d, want %d", i, ev.Lamport, i+1)
		}
	}
}

func TestNewLogRejectsInvalid(t *testing.T) {
	if _, err := NewLog([]Event{{Kind: Update}}); err == nil {
		t.Fatal("NewLog should reject an event without a replica")
	}
}

func TestLogReplicasAndByReplica(t *testing.T) {
	log, err := NewLog([]Event{
		upd("B", "x"),
		upd("A", "y"),
		syncSend("B", "A", 0),
		syncExec("B", "A", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := log.Replicas()
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("Replicas() = %v, want [A B]", got)
	}
	a := log.ByReplica("A")
	if len(a) != 2 || a[0] != 1 || a[1] != 3 {
		t.Fatalf("ByReplica(A) = %v, want [1 3]", a)
	}
}

func TestSyncPairs(t *testing.T) {
	log, err := NewLog([]Event{
		upd("A", "add"),       // 0
		syncSend("A", "B", 0), // 1
		upd("B", "add"),       // 2
		syncExec("A", "B", 0), // 3 pairs with 1
		syncSend("B", "A", 2), // 4
		syncExec("B", "A", 2), // 5 pairs with 4
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs := log.SyncPairs()
	want := [][2]ID{{1, 3}, {4, 5}}
	if len(pairs) != len(want) {
		t.Fatalf("SyncPairs() = %v, want %v", pairs, want)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Errorf("pair %d = %v, want %v", i, pairs[i], want[i])
		}
	}
}

func TestSyncPairsNoCrossMatch(t *testing.T) {
	// Two sends with different payloads must not pair with each other's exec.
	log, err := NewLog([]Event{
		upd("A", "add"),       // 0
		upd("A", "add"),       // 1
		syncSend("A", "B", 0), // 2
		syncSend("A", "B", 1), // 3
		syncExec("A", "B", 1), // 4 pairs with 3
		syncExec("A", "B", 0), // 5 pairs with 2
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs := log.SyncPairs()
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs, want 2", len(pairs))
	}
	if pairs[0] != [2]ID{2, 5} || pairs[1] != [2]ID{3, 4} {
		t.Fatalf("SyncPairs() = %v, want [[2 5] [3 4]]", pairs)
	}
}

func TestLamportClockMonotonic(t *testing.T) {
	var c LamportClock
	prev := c.Tick()
	for i := 0; i < 100; i++ {
		next := c.Tick()
		if next <= prev {
			t.Fatalf("clock went backwards: %d then %d", prev, next)
		}
		prev = next
	}
}

func TestLamportWitness(t *testing.T) {
	var c LamportClock
	c.Tick() // 1
	got := c.Witness(10)
	if got != 11 {
		t.Fatalf("Witness(10) = %d, want 11", got)
	}
	if got := c.Witness(3); got != 12 {
		t.Fatalf("Witness(3) = %d, want 12 (ignore stale remote)", got)
	}
	if c.Now() != 12 {
		t.Fatalf("Now() = %d, want 12", c.Now())
	}
}

func TestVectorClockCompare(t *testing.T) {
	a := VectorClock{"A": 1, "B": 2}
	b := VectorClock{"A": 2, "B": 2}
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("a should happen-before b")
	}
	c := VectorClock{"A": 2, "B": 1}
	if !a.Concurrent(c) {
		t.Error("a and c are concurrent")
	}
	if a.Concurrent(a.Clone()) {
		t.Error("a clone is equal, not concurrent")
	}
}

func TestVectorClockMergeProperties(t *testing.T) {
	// Merge is commutative and idempotent: checked with testing/quick over
	// small random clocks.
	gen := func(xs, ys []uint8) bool {
		a, b := NewVectorClock(), NewVectorClock()
		for i, x := range xs {
			a[ReplicaID(string(rune('A'+i%5)))] = uint64(x)
		}
		for i, y := range ys {
			b[ReplicaID(string(rune('A'+i%5)))] = uint64(y)
		}
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.Equal(ba) {
			return false
		}
		again := ab.Clone()
		again.Merge(b)
		return again.Equal(ab)
	}
	if err := quick.Check(gen, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorClockString(t *testing.T) {
	v := VectorClock{"B": 1, "A": 2}
	if got := v.String(); got != "{A:2 B:1}" {
		t.Fatalf("String() = %q", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{ID: 3, Kind: SyncSend, Replica: "A", From: "A", To: "B", Op: "set.add", Args: []string{"x"}}
	s := e.String()
	for _, want := range []string{"ev3", "sync_req", "A->B", "set.add", "(x)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
