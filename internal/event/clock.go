package event

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// LamportClock is a thread-safe Lamport logical clock. ER-π assigns a
// Lamport timestamp to every event of every interleaving; the timestamp
// defines the event execution order during replay (paper §4.2).
type LamportClock struct {
	mu  sync.Mutex
	now uint64
}

// Tick advances the clock for a local event and returns the new time.
func (c *LamportClock) Tick() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now++
	return c.now
}

// Witness merges an observed remote timestamp and returns the new local
// time, which is strictly greater than both the previous local time and the
// observed time.
func (c *LamportClock) Witness(remote uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if remote > c.now {
		c.now = remote
	}
	c.now++
	return c.now
}

// Now returns the current time without advancing it.
func (c *LamportClock) Now() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// VectorClock maps replicas to their known event counts. It provides the
// happens-before relation used by causal-delivery checks in the test
// library (misconception #1).
type VectorClock map[ReplicaID]uint64

// NewVectorClock returns an empty vector clock.
func NewVectorClock() VectorClock { return make(VectorClock) }

// Clone returns an independent copy.
func (v VectorClock) Clone() VectorClock {
	out := make(VectorClock, len(v))
	for k, n := range v {
		out[k] = n
	}
	return out
}

// Tick increments the component of replica r and returns the new value.
func (v VectorClock) Tick(r ReplicaID) uint64 {
	v[r]++
	return v[r]
}

// Merge folds another clock into this one component-wise (max).
func (v VectorClock) Merge(other VectorClock) {
	for k, n := range other {
		if n > v[k] {
			v[k] = n
		}
	}
}

// Compare returns -1 if v happens-before other, +1 if other happens-before
// v, 0 if they are equal or concurrent. Use Concurrent to distinguish the
// latter two.
func (v VectorClock) Compare(other VectorClock) int {
	less, greater := false, false
	keys := make(map[ReplicaID]struct{}, len(v)+len(other))
	for k := range v {
		keys[k] = struct{}{}
	}
	for k := range other {
		keys[k] = struct{}{}
	}
	for k := range keys {
		a, b := v[k], other[k]
		switch {
		case a < b:
			less = true
		case a > b:
			greater = true
		}
	}
	switch {
	case less && !greater:
		return -1
	case greater && !less:
		return 1
	default:
		return 0
	}
}

// Concurrent reports whether the two clocks are incomparable.
func (v VectorClock) Concurrent(other VectorClock) bool {
	return v.Compare(other) == 0 && !v.Equal(other)
}

// Equal reports whether both clocks have identical components.
func (v VectorClock) Equal(other VectorClock) bool {
	for k, n := range v {
		if other[k] != n {
			return false
		}
	}
	for k, n := range other {
		if v[k] != n {
			return false
		}
	}
	return true
}

// String renders the clock deterministically, e.g. "{A:2 B:1}".
func (v VectorClock) String() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, v[ReplicaID(k)])
	}
	return "{" + strings.Join(parts, " ") + "}"
}
