// Package event defines the distributed-event model that ER-π extracts from
// a recorded application segment and later permutes into interleavings.
//
// An Event is one interaction between application logic and the replicated
// data library (RDL): a local update, the sending of a synchronization
// request to a peer replica, the execution of a received synchronization
// request, or an externally observable read ("observe"). Events carry the
// replica they execute at, the replicas they travel between (for sync
// events), and the logical time assigned during recording and replay.
package event

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a distributed event.
type Kind int

// Event kinds. Enum starts at one so the zero value is invalid and
// accidental zero-initialized events are caught by Validate.
const (
	// Update is a local mutation of the replicated state through the RDL
	// (e.g. set add/remove, list insert, counter increment).
	Update Kind = iota + 1
	// SyncSend is the emission of a synchronization request carrying one or
	// more updates from one replica to another.
	SyncSend
	// SyncExec is the application of a previously sent synchronization
	// request at the receiving replica.
	SyncExec
	// Observe is an externally visible read of replicated state (e.g.
	// transmitting the current value to a third party). Observes anchor
	// test invariants.
	Observe
)

var kindNames = map[Kind]string{
	Update:   "update",
	SyncSend: "sync_req",
	SyncExec: "exec_sync",
	Observe:  "observe",
}

// String returns the wire name of the kind, matching the vocabulary used in
// the paper's Algorithm 1 (sync_req / exec_sync).
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool { _, ok := kindNames[k]; return ok }

// ParseKind converts a wire name back into a Kind.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("event: unknown kind %q", s)
}

// ID identifies an event within one recorded segment. IDs are dense indexes
// assigned in recording order, which makes them usable as slice indexes in
// the interleaving machinery.
type ID int

// ReplicaID names a replica. The empty string is reserved for "no replica"
// (e.g. the To field of a local update).
type ReplicaID string

// Event is one distributed event extracted from a recorded segment.
type Event struct {
	// ID is the dense recording-order index of the event.
	ID ID `json:"id"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Replica is the replica at which the event executes. For SyncSend this
	// is the sender; for SyncExec the receiver.
	Replica ReplicaID `json:"replica"`
	// From and To are set for SyncSend and SyncExec events and name the
	// (sender, receiver) pair of the synchronization.
	From ReplicaID `json:"from,omitempty"`
	To   ReplicaID `json:"to,omitempty"`
	// Op is the RDL operation name (e.g. "set.add", "list.move").
	Op string `json:"op,omitempty"`
	// Args is the encoded operation payload, opaque to the interleaving
	// machinery but replayed verbatim.
	Args []string `json:"args,omitempty"`
	// Carries lists the update events whose effects a sync event transports.
	Carries []ID `json:"carries,omitempty"`
	// Lamport is the logical timestamp assigned at recording time and
	// reassigned per interleaving during replay.
	Lamport uint64 `json:"lamport,omitempty"`
}

// Validate reports the first structural problem with the event, or nil.
func (e Event) Validate() error {
	switch {
	case !e.Kind.Valid():
		return fmt.Errorf("event %d: invalid kind %d", e.ID, int(e.Kind))
	case e.Replica == "":
		return fmt.Errorf("event %d: missing replica", e.ID)
	case e.ID < 0:
		return fmt.Errorf("event: negative id %d", e.ID)
	}
	switch e.Kind {
	case SyncSend, SyncExec:
		if e.From == "" || e.To == "" {
			return fmt.Errorf("event %d: %s requires from and to replicas", e.ID, e.Kind)
		}
		if e.From == e.To {
			return fmt.Errorf("event %d: sync from a replica to itself (%s)", e.ID, e.From)
		}
		if e.Kind == SyncSend && e.Replica != e.From {
			return fmt.Errorf("event %d: sync_req must execute at sender %s, not %s", e.ID, e.From, e.Replica)
		}
		if e.Kind == SyncExec && e.Replica != e.To {
			return fmt.Errorf("event %d: exec_sync must execute at receiver %s, not %s", e.ID, e.To, e.Replica)
		}
	case Update, Observe:
		if e.From != "" || e.To != "" {
			return fmt.Errorf("event %d: %s must not carry from/to", e.ID, e.Kind)
		}
	}
	return nil
}

// IsSync reports whether the event is part of a synchronization exchange.
func (e Event) IsSync() bool { return e.Kind == SyncSend || e.Kind == SyncExec }

// Touches reports whether the event executes at or delivers into replica r.
// A SyncSend touches only its sender; the matching SyncExec touches the
// receiver. This is the impact notion used by replica-specific pruning.
func (e Event) Touches(r ReplicaID) bool {
	if e.Replica == r {
		return true
	}
	return e.Kind == SyncExec && e.To == r
}

// String renders a compact, human-readable description.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ev%d[%s@%s", int(e.ID), e.Kind, e.Replica)
	if e.IsSync() {
		fmt.Fprintf(&b, " %s->%s", e.From, e.To)
	}
	if e.Op != "" {
		fmt.Fprintf(&b, " %s", e.Op)
		if len(e.Args) > 0 {
			fmt.Fprintf(&b, "(%s)", strings.Join(e.Args, ","))
		}
	}
	b.WriteString("]")
	return b.String()
}

// Log is an ordered sequence of events as recorded between ER-π.Start and
// ER-π.End. Event IDs are the indexes into the log.
type Log struct {
	events []Event
}

// NewLog builds a log from recorded events, assigning dense IDs in order.
// The input slice is copied; the caller keeps ownership of its slice.
func NewLog(events []Event) (*Log, error) {
	l := &Log{events: make([]Event, len(events))}
	copy(l.events, events)
	for i := range l.events {
		l.events[i].ID = ID(i)
		if l.events[i].Lamport == 0 {
			l.events[i].Lamport = uint64(i + 1)
		}
		if err := l.events[i].Validate(); err != nil {
			return nil, fmt.Errorf("event: invalid log: %w", err)
		}
	}
	return l, nil
}

// Len returns the number of events in the log.
func (l *Log) Len() int { return len(l.events) }

// Event returns the event with the given ID.
func (l *Log) Event(id ID) Event {
	return l.events[int(id)]
}

// Events returns a copy of all events in recording order.
func (l *Log) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// IDs returns all event IDs in recording order.
func (l *Log) IDs() []ID {
	out := make([]ID, len(l.events))
	for i := range l.events {
		out[i] = ID(i)
	}
	return out
}

// Replicas returns the sorted set of replicas appearing in the log.
func (l *Log) Replicas() []ReplicaID {
	set := make(map[ReplicaID]struct{})
	for _, e := range l.events {
		set[e.Replica] = struct{}{}
		if e.IsSync() {
			set[e.From] = struct{}{}
			set[e.To] = struct{}{}
		}
	}
	out := make([]ReplicaID, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ByReplica returns the IDs of events executing at replica r, in order.
func (l *Log) ByReplica(r ReplicaID) []ID {
	var out []ID
	for _, e := range l.events {
		if e.Replica == r {
			out = append(out, e.ID)
		}
	}
	return out
}

// SyncPairs returns the (SyncSend, SyncExec) ID pairs with matching
// (from, to) replicas and payloads, in recording order. Each event is used
// in at most one pair; sends match the earliest unmatched exec that follows
// them with the same endpoints and the same carried updates.
func (l *Log) SyncPairs() [][2]ID {
	used := make(map[ID]bool)
	var pairs [][2]ID
	for _, send := range l.events {
		if send.Kind != SyncSend || used[send.ID] {
			continue
		}
		for _, exec := range l.events[int(send.ID)+1:] {
			if exec.Kind != SyncExec || used[exec.ID] {
				continue
			}
			if exec.From == send.From && exec.To == send.To && sameIDs(exec.Carries, send.Carries) {
				pairs = append(pairs, [2]ID{send.ID, exec.ID})
				used[send.ID], used[exec.ID] = true, true
				break
			}
		}
	}
	return pairs
}

func sameIDs(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
