package lockserver

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Server serves the Store over TCP using a RESP subset: requests arrive as
// RESP arrays of bulk strings; replies are simple strings, bulk strings,
// integers, errors, or nil bulks — wire-compatible with the corresponding
// Redis commands.
type Server struct {
	store *Store

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
	// closedCh unblocks handlers parked in a blocking WAITGE so Close's
	// wg.Wait cannot deadlock on them.
	closedCh chan struct{}
}

// NewServer returns a server over the given store.
func NewServer(store *Store) *Server {
	return &Server{store: store, conns: make(map[net.Conn]struct{}), closedCh: make(chan struct{})}
}

// Listen starts accepting connections on addr ("127.0.0.1:0" picks a free
// port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("lockserver: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops the listener and all connections, waiting for handler
// goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.closedCh)
	}
	ln := s.listener
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		args, err := readCommand(r)
		if err != nil {
			return
		}
		reply := s.dispatch(args)
		if _, err := w.WriteString(reply); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(args []string) string {
	if len(args) == 0 {
		return respError("empty command")
	}
	switch strings.ToUpper(args[0]) {
	case "PING":
		return respSimple("PONG")
	case "SET":
		return s.cmdSet(args[1:])
	case "GET":
		if len(args) != 2 {
			return respError("GET requires 1 argument")
		}
		v, ok := s.store.Get(args[1])
		if !ok {
			return respNil()
		}
		return respBulk(v)
	case "DEL":
		if len(args) != 2 {
			return respError("DEL requires 1 argument")
		}
		if s.store.Del(args[1]) {
			return respInt(1)
		}
		return respInt(0)
	case "INCR":
		if len(args) != 2 {
			return respError("INCR requires 1 argument")
		}
		n, err := s.store.Incr(args[1])
		if err != nil {
			return respError("value is not an integer")
		}
		return respInt(n)
	case "WAITGE":
		return s.cmdWaitGE(args[1:])
	case "CAD":
		if len(args) != 3 {
			return respError("CAD requires 2 arguments")
		}
		if s.store.CompareAndDelete(args[1], args[2]) {
			return respInt(1)
		}
		return respInt(0)
	case "CEX":
		if len(args) != 4 {
			return respError("CEX requires 3 arguments")
		}
		ms, err := strconv.ParseInt(args[3], 10, 64)
		if err != nil || ms < 0 {
			return respError("invalid CEX ttl")
		}
		if s.store.CompareAndExpire(args[1], args[2], time.Duration(ms)*time.Millisecond) {
			return respInt(1)
		}
		return respInt(0)
	default:
		return respError("unknown command " + args[0])
	}
}

// maxBlockingWait caps how long one WAITGE parks its handler, whatever
// timeout the client asked for: a bound on how long a dead client's
// handler goroutine can linger.
const maxBlockingWait = 30 * time.Second

// cmdWaitGE serves the blocking sequencer wait: WAITGE key target
// timeoutMs parks until the integer at key (missing = 0) reaches target,
// then replies with the current value. A timeout replies with the current
// (sub-target) value; the client re-issues or falls back to polling.
func (s *Server) cmdWaitGE(args []string) string {
	if len(args) != 3 {
		return respError("WAITGE requires key, target, and timeout")
	}
	target, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return respError("invalid WAITGE target")
	}
	ms, err := strconv.ParseInt(args[2], 10, 64)
	if err != nil || ms < 0 {
		return respError("invalid WAITGE timeout")
	}
	timeout := time.Duration(ms) * time.Millisecond
	if timeout > maxBlockingWait {
		timeout = maxBlockingWait
	}
	cur, err := s.store.WaitGE(args[0], target, timeout, s.closedCh)
	if err != nil {
		return respError("value is not an integer")
	}
	return respInt(cur)
}

func (s *Server) cmdSet(args []string) string {
	if len(args) < 2 {
		return respError("SET requires key and value")
	}
	key, value := args[0], args[1]
	nx := false
	var px time.Duration
	for i := 2; i < len(args); i++ {
		switch strings.ToUpper(args[i]) {
		case "NX":
			nx = true
		case "PX":
			if i+1 >= len(args) {
				return respError("PX requires milliseconds")
			}
			ms, err := strconv.ParseInt(args[i+1], 10, 64)
			if err != nil || ms <= 0 {
				return respError("invalid PX value")
			}
			px = time.Duration(ms) * time.Millisecond
			i++
		default:
			return respError("unknown SET option " + args[i])
		}
	}
	if s.store.Set(key, value, nx, px) {
		return respSimple("OK")
	}
	return respNil()
}

// readCommand parses one RESP array-of-bulk-strings request.
func readCommand(r *bufio.Reader) ([]string, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 || line[0] != '*' {
		return nil, fmt.Errorf("lockserver: malformed request %q", line)
	}
	n, err := strconv.Atoi(line[1:])
	if err != nil || n < 0 || n > 64 {
		return nil, fmt.Errorf("lockserver: bad array length %q", line)
	}
	args := make([]string, 0, n)
	for i := 0; i < n; i++ {
		bulk, err := readBulk(r)
		if err != nil {
			return nil, err
		}
		args = append(args, bulk)
	}
	return args, nil
}

func readBulk(r *bufio.Reader) (string, error) {
	line, err := readLine(r)
	if err != nil {
		return "", err
	}
	if len(line) == 0 || line[0] != '$' {
		return "", fmt.Errorf("lockserver: expected bulk string, got %q", line)
	}
	n, err := strconv.Atoi(line[1:])
	if err != nil || n < 0 || n > 1<<20 {
		return "", fmt.Errorf("lockserver: bad bulk length %q", line)
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return "", errors.New("lockserver: bulk string missing CRLF")
	}
	return string(buf[:n]), nil
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func respSimple(s string) string { return "+" + s + "\r\n" }
func respError(s string) string  { return "-ERR " + s + "\r\n" }
func respInt(n int64) string     { return ":" + strconv.FormatInt(n, 10) + "\r\n" }
func respNil() string            { return "$-1\r\n" }
func respBulk(s string) string {
	return "$" + strconv.Itoa(len(s)) + "\r\n" + s + "\r\n"
}
