package lockserver

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/er-pi/erpi/internal/telemetry"
)

// ErrLeaseLost marks a distributed-mutex operation that discovered the
// holder's lease expired (or was taken over) mid-critical-section. It is a
// typed, checkable condition — the alternative on the paper's physical
// testbed was a silent hang or a split-brain critical section.
var ErrLeaseLost = errors.New("lockserver: lease lost")

// ErrClientClosed marks a request aborted because Close was called while
// the request was mid-backoff. Without it, a client torn down during a
// lock-server outage would pin its caller through the rest of the backoff
// ladder.
var ErrClientClosed = errors.New("lockserver: client closed")

// ErrBlockingUnsupported marks a WAITGE request rejected by a server that
// predates the blocking wait. The sequencer downgrades to polling for the
// rest of its lifetime when it sees this.
var ErrBlockingUnsupported = errors.New("lockserver: blocking wait unsupported by server")

// FaultHook inspects an outgoing request before it reaches the wire; a
// non-nil return fails the attempt as if the server were unreachable. The
// fault package installs outage windows through this seam.
type FaultHook func(op string, args []string) error

// Client is a minimal RESP client for the lock server. Safe for concurrent
// use: requests are serialized over one connection.
//
// The client heals from connection loss: a failed request is retried with
// exponential backoff, re-dialing the server between attempts, so a
// restarting lock server degrades replay throughput instead of killing the
// run.
type Client struct {
	mu   sync.Mutex
	addr string
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	// reconnect policy: maxAttempts tries per request, starting at backoff
	// and doubling.
	maxAttempts int
	backoff     time.Duration
	hook        FaultHook

	// closed aborts in-flight backoff sleeps when Close is called. It is
	// managed outside mu (a request holds mu while sleeping, so Close must
	// be able to signal without acquiring it).
	closeOnce sync.Once
	closed    chan struct{}
}

// Reconnect policy defaults: 4 attempts starting at 5ms keep a transient
// server restart invisible while bounding a hard outage to ~35ms per call.
const (
	defaultMaxAttempts = 4
	defaultBackoff     = 5 * time.Millisecond
)

// Dial connects to a lock server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("lockserver: dial %s: %w", addr, err)
	}
	return &Client{
		addr:        addr,
		conn:        conn,
		r:           bufio.NewReader(conn),
		w:           bufio.NewWriter(conn),
		maxAttempts: defaultMaxAttempts,
		backoff:     defaultBackoff,
		closed:      make(chan struct{}),
	}, nil
}

// SetReconnect tunes the per-request retry policy: attempts total tries
// (minimum 1) with exponential backoff starting at base.
func (c *Client) SetReconnect(attempts int, base time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if attempts < 1 {
		attempts = 1
	}
	if base <= 0 {
		base = defaultBackoff
	}
	c.maxAttempts = attempts
	c.backoff = base
}

// SetFaultHook installs (or, with nil, removes) a fault-injection hook.
func (c *Client) SetFaultHook(h FaultHook) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hook = h
}

// Close shuts the connection and aborts any request sleeping in its
// reconnect backoff.
func (c *Client) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// reply is the decoded RESP response.
type reply struct {
	kind  byte // '+', '-', ':', '$'
	str   string
	n     int64
	isNil bool
}

func (c *Client) do(args ...string) (reply, error) {
	return c.doCtx(context.Background(), args...)
}

// doCtx is do with a cancellation context: the reconnect backoff sleeps
// are interruptible by ctx and by Close, so a cancelled run (or a client
// torn down mid-outage) is never pinned through the full backoff ladder.
func (c *Client) doCtx(ctx context.Context, args ...string) (reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	backoff := c.backoff
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				timer.Stop()
				return reply{}, fmt.Errorf("lockserver: %s aborted: %w (last error: %v)",
					args[0], ctx.Err(), lastErr)
			case <-c.closed:
				timer.Stop()
				return reply{}, fmt.Errorf("lockserver: %s aborted: %w (last error: %v)",
					args[0], ErrClientClosed, lastErr)
			case <-timer.C:
			}
			backoff *= 2
		}
		if c.hook != nil {
			if err := c.hook(args[0], args[1:]); err != nil {
				lastErr = err
				continue
			}
		}
		if c.conn == nil {
			conn, err := net.Dial("tcp", c.addr)
			if err != nil {
				lastErr = err
				continue
			}
			c.conn = conn
			c.r = bufio.NewReader(conn)
			c.w = bufio.NewWriter(conn)
		}
		rep, err := c.roundTrip(args)
		if err == nil {
			return rep, nil
		}
		// The stream may be desynchronized mid-reply: drop the connection
		// and re-dial on the next attempt.
		lastErr = err
		_ = c.conn.Close()
		c.conn = nil
	}
	return reply{}, fmt.Errorf("lockserver: %s failed after %d attempts: %w",
		args[0], c.maxAttempts, lastErr)
}

func (c *Client) roundTrip(args []string) (reply, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(&b, "$%d\r\n%s\r\n", len(a), a)
	}
	if _, err := c.w.WriteString(b.String()); err != nil {
		return reply{}, err
	}
	if err := c.w.Flush(); err != nil {
		return reply{}, err
	}
	return c.readReply()
}

func (c *Client) readReply() (reply, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return reply{}, err
	}
	line = strings.TrimRight(line, "\r\n")
	if line == "" {
		return reply{}, errors.New("lockserver: empty reply")
	}
	switch line[0] {
	case '+':
		return reply{kind: '+', str: line[1:]}, nil
	case '-':
		return reply{kind: '-', str: line[1:]}, nil
	case ':':
		n, err := strconv.ParseInt(line[1:], 10, 64)
		if err != nil {
			return reply{}, err
		}
		return reply{kind: ':', n: n}, nil
	case '$':
		n, err := strconv.Atoi(line[1:])
		if err != nil {
			return reply{}, err
		}
		if n < 0 {
			return reply{kind: '$', isNil: true}, nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(c.r, buf); err != nil {
			return reply{}, err
		}
		return reply{kind: '$', str: string(buf[:n])}, nil
	default:
		return reply{}, fmt.Errorf("lockserver: unexpected reply %q", line)
	}
}

// Ping checks liveness.
func (c *Client) Ping() error {
	rep, err := c.do("PING")
	if err != nil {
		return err
	}
	if rep.kind != '+' || rep.str != "PONG" {
		return fmt.Errorf("lockserver: unexpected ping reply %+v", rep)
	}
	return nil
}

// SetNX sets key=value with a TTL only if absent; reports acquisition.
func (c *Client) SetNX(key, value string, ttl time.Duration) (bool, error) {
	return c.SetNXContext(context.Background(), key, value, ttl)
}

// SetNXContext is SetNX with a cancellation context bounding the
// reconnect backoff (see doCtx).
func (c *Client) SetNXContext(ctx context.Context, key, value string, ttl time.Duration) (bool, error) {
	rep, err := c.doCtx(ctx, "SET", key, value, "NX", "PX", strconv.FormatInt(ttl.Milliseconds(), 10))
	if err != nil {
		return false, err
	}
	if rep.kind == '-' {
		return false, errors.New(rep.str)
	}
	return !rep.isNil && rep.kind == '+', nil
}

// Set writes key=value unconditionally (no TTL).
func (c *Client) Set(key, value string) error {
	rep, err := c.do("SET", key, value)
	if err != nil {
		return err
	}
	if rep.kind == '-' {
		return errors.New(rep.str)
	}
	return nil
}

// Get reads key.
func (c *Client) Get(key string) (string, bool, error) {
	rep, err := c.do("GET", key)
	if err != nil {
		return "", false, err
	}
	if rep.kind == '-' {
		return "", false, errors.New(rep.str)
	}
	if rep.isNil {
		return "", false, nil
	}
	return rep.str, true, nil
}

// Del removes key.
func (c *Client) Del(key string) (bool, error) {
	rep, err := c.do("DEL", key)
	if err != nil {
		return false, err
	}
	return rep.n == 1, nil
}

// Incr increments the counter at key.
func (c *Client) Incr(key string) (int64, error) {
	rep, err := c.do("INCR", key)
	if err != nil {
		return 0, err
	}
	if rep.kind == '-' {
		return 0, errors.New(rep.str)
	}
	return rep.n, nil
}

// WaitGE long-polls the server until the integer value at key (missing =
// 0) reaches at least target or the timeout elapses server-side, and
// returns the last value the server read. A sub-target return value means
// the wait timed out. The connection blocks for up to timeout, so callers
// sharing this client serialize behind the wait — give each blocking
// waiter its own client.
func (c *Client) WaitGE(key string, target int64, timeout time.Duration) (int64, error) {
	rep, err := c.do("WAITGE", key,
		strconv.FormatInt(target, 10),
		strconv.FormatInt(timeout.Milliseconds(), 10))
	if err != nil {
		return 0, err
	}
	if rep.kind == '-' {
		if strings.Contains(rep.str, "unknown command") {
			return 0, ErrBlockingUnsupported
		}
		return 0, errors.New(rep.str)
	}
	return rep.n, nil
}

// CompareAndDelete removes key iff its value equals expect.
func (c *Client) CompareAndDelete(key, expect string) (bool, error) {
	rep, err := c.do("CAD", key, expect)
	if err != nil {
		return false, err
	}
	return rep.n == 1, nil
}

// CompareAndExpire refreshes key's TTL iff its value equals expect — the
// lease-renewal primitive: a holder extends its own lock atomically, and a
// false return proves the lease is gone.
func (c *Client) CompareAndExpire(key, expect string, ttl time.Duration) (bool, error) {
	return c.CompareAndExpireContext(context.Background(), key, expect, ttl)
}

// CompareAndExpireContext is CompareAndExpire with a cancellation context
// bounding the reconnect backoff, so a stopped renewal goroutine exits
// promptly instead of riding out the ladder against a dead server.
func (c *Client) CompareAndExpireContext(ctx context.Context, key, expect string, ttl time.Duration) (bool, error) {
	rep, err := c.doCtx(ctx, "CEX", key, expect, strconv.FormatInt(ttl.Milliseconds(), 10))
	if err != nil {
		return false, err
	}
	if rep.kind == '-' {
		return false, errors.New(rep.str)
	}
	return rep.n == 1, nil
}

// UnlockAdvance pipelines the distributed-gate handoff — CAD mutexKey
// token releasing the mutex, then INCR seqKey handing the turn to the
// next event — in one write and flush, so an Advance costs a single round
// trip instead of two. Unlike do(), the pair is never retried: INCR is
// not idempotent, and an ambiguous failure (the request may have been
// applied) must surface to the caller, who abandons the session and
// replays it under a fresh key namespace where a stray increment cannot
// matter. A CAD miss (lease expired or taken over) returns an error
// wrapping ErrLeaseLost; the INCR has still executed server-side, which
// only perturbs the already-doomed session's own counter.
func (c *Client) UnlockAdvance(mutexKey, token, seqKey string) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hook != nil {
		if err := c.hook("CAD", []string{mutexKey, token}); err != nil {
			return 0, err
		}
		if err := c.hook("INCR", []string{seqKey}); err != nil {
			return 0, err
		}
	}
	if c.conn == nil {
		conn, err := net.Dial("tcp", c.addr)
		if err != nil {
			return 0, err
		}
		c.conn = conn
		c.r = bufio.NewReader(conn)
		c.w = bufio.NewWriter(conn)
	}
	fail := func(err error) (int64, error) {
		_ = c.conn.Close()
		c.conn = nil
		return 0, err
	}
	var b strings.Builder
	for _, args := range [][]string{{"CAD", mutexKey, token}, {"INCR", seqKey}} {
		fmt.Fprintf(&b, "*%d\r\n", len(args))
		for _, a := range args {
			fmt.Fprintf(&b, "$%d\r\n%s\r\n", len(a), a)
		}
	}
	if _, err := c.w.WriteString(b.String()); err != nil {
		return fail(err)
	}
	if err := c.w.Flush(); err != nil {
		return fail(err)
	}
	cadRep, err := c.readReply()
	if err != nil {
		return fail(err)
	}
	incrRep, err := c.readReply()
	if err != nil {
		return fail(err)
	}
	if cadRep.kind == '-' {
		return 0, errors.New(cadRep.str)
	}
	if cadRep.n != 1 {
		return 0, fmt.Errorf("lockserver: release %s: not the holder (token %s): %w",
			mutexKey, token, ErrLeaseLost)
	}
	if incrRep.kind == '-' {
		return 0, errors.New(incrRep.str)
	}
	return incrRep.n, nil
}

// DMutex is a distributed mutex over a shared key, in the style of the
// Redis Redlock pattern the paper uses: acquisition is SET key token NX PX,
// release is an atomic compare-and-delete of the holder's token.
//
// With AutoRenew enabled, a background goroutine extends the lease while
// the mutex is held; a lease that cannot be extended (expired and possibly
// taken over) surfaces as ErrLeaseLost from Unlock and closes the Lost
// channel, so a holder wedged mid-turn learns about the takeover instead
// of hanging or silently double-holding.
type DMutex struct {
	client *Client
	key    string
	token  string
	ttl    time.Duration
	retry  time.Duration

	renewEvery time.Duration

	// Telemetry (nil-safe): acquire records time spent blocked in Lock,
	// renew records each CompareAndExpire round trip.
	histAcquire *telemetry.Histogram
	histRenew   *telemetry.Histogram

	mu        sync.Mutex
	lost      chan struct{}
	lostErr   error
	stop      chan struct{}
	done      chan struct{}
	renewStop context.CancelFunc
}

// SetMetrics attaches latency histograms for lock acquisition waits and
// lease renewals. Call before Lock; nil histograms record nothing.
func (m *DMutex) SetMetrics(acquire, renew *telemetry.Histogram) {
	m.histAcquire = acquire
	m.histRenew = renew
}

// NewDMutex builds a mutex on key with the given token (must be unique per
// holder), lock TTL, and retry interval.
func NewDMutex(client *Client, key, token string, ttl, retry time.Duration) *DMutex {
	return &DMutex{client: client, key: key, token: token, ttl: ttl, retry: retry}
}

// AutoRenew enables background lease renewal every `every` while the mutex
// is held; zero picks ttl/3. Call before Lock.
func (m *DMutex) AutoRenew(every time.Duration) {
	if every <= 0 {
		every = m.ttl / 3
		if every <= 0 {
			every = time.Millisecond
		}
	}
	m.renewEvery = every
}

// Lock blocks until the mutex is acquired or the context is done. Request
// errors are treated as transient (the client reconnects underneath), so a
// lock-server outage stalls acquisition until the context expires rather
// than failing it.
func (m *DMutex) Lock(ctx context.Context) error {
	started := time.Now()
	for {
		ok, err := m.client.SetNXContext(ctx, m.key, m.token, m.ttl)
		if ok && err == nil {
			m.histAcquire.ObserveDuration(time.Since(started))
			m.startRenewal()
			return nil
		}
		if err != nil {
			// Transient: poll again while the context is alive.
			if ctxErr := ctx.Err(); ctxErr != nil {
				return fmt.Errorf("lockserver: acquire %s: %w (last error: %v)", m.key, ctxErr, err)
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("lockserver: acquire %s: %w", m.key, ctx.Err())
		case <-time.After(m.retry):
		}
	}
}

func (m *DMutex) startRenewal() {
	if m.renewEvery <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lost = make(chan struct{})
	m.lostErr = nil
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	// The renewal context dies with stop, so a renewal round trip caught
	// mid-backoff against an unreachable server aborts immediately instead
	// of pinning stopRenewal through the ladder.
	ctx, cancel := context.WithCancel(context.Background())
	m.renewStop = cancel
	go m.renewLoop(ctx, m.stop, m.done, m.lost)
}

func (m *DMutex) renewLoop(ctx context.Context, stop, done, lost chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(m.renewEvery)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			renewStart := time.Now()
			ok, err := m.client.CompareAndExpireContext(ctx, m.key, m.token, m.ttl)
			m.histRenew.ObserveDuration(time.Since(renewStart))
			if err != nil {
				if ctx.Err() != nil {
					return // stopRenewal cancelled us mid-request
				}
				// Transient: the lease may well still be alive; renewing
				// again next tick is always safe.
				continue
			}
			if !ok {
				m.mu.Lock()
				m.lostErr = fmt.Errorf("lockserver: %s: %w", m.key, ErrLeaseLost)
				m.mu.Unlock()
				close(lost)
				return
			}
		}
	}
}

// stopRenewal halts the renewal goroutine and returns the recorded lease
// loss, if any.
func (m *DMutex) stopRenewal() error {
	m.mu.Lock()
	stop, done, cancel := m.stop, m.done, m.renewStop
	m.stop, m.done, m.renewStop = nil, nil, nil
	m.mu.Unlock()
	if stop == nil {
		return m.Err()
	}
	select {
	case <-done: // renewal already exited (lease lost)
	default:
		close(stop)
		if cancel != nil {
			cancel() // abort a renewal round trip stuck in backoff
		}
		<-done
	}
	if cancel != nil {
		cancel()
	}
	return m.Err()
}

// Lost returns a channel closed when background renewal discovers the
// lease is gone (nil when AutoRenew is off or the mutex is unheld).
func (m *DMutex) Lost() <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lost
}

// Err returns the recorded lease-loss error, if any.
func (m *DMutex) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lostErr
}

// Unlock releases the mutex if this holder still owns it. A lease lost
// while held — detected by renewal or by the release itself — returns an
// error wrapping ErrLeaseLost.
func (m *DMutex) Unlock() error {
	if err := m.stopRenewal(); err != nil {
		return err
	}
	ok, err := m.client.CompareAndDelete(m.key, m.token)
	if err != nil {
		return fmt.Errorf("lockserver: release %s: %w", m.key, err)
	}
	if !ok {
		return fmt.Errorf("lockserver: release %s: not the holder (token %s): %w",
			m.key, m.token, ErrLeaseLost)
	}
	return nil
}

// UnlockAdvance releases the mutex and advances the sequencer at seqKey
// in one pipelined round trip (see Client.UnlockAdvance). A lease lost
// while held — detected by renewal or by the release itself — returns an
// error wrapping ErrLeaseLost. Transport errors are not retried; the
// caller abandons the session rather than risk a double increment.
func (m *DMutex) UnlockAdvance(seqKey string) (int64, error) {
	if err := m.stopRenewal(); err != nil {
		return 0, err
	}
	return m.client.UnlockAdvance(m.key, m.token, seqKey)
}

// Abandon stops lease renewal and makes one best-effort attempt to
// release the mutex, ignoring failures. It is the teardown path for
// sessions being cancelled: without it an armed mutex holds its key until
// TTL expiry, stalling the namespace's next user.
func (m *DMutex) Abandon() {
	_ = m.stopRenewal()
	_, _ = m.client.CompareAndDelete(m.key, m.token)
}

// Orphan stops lease renewal WITHOUT releasing the key, leaving the lease
// to expire on its own TTL — exactly what a SIGKILLed holder does. Crash
// tests use it to simulate a dead worker faithfully: the next claimant
// must wait out the TTL, and the fencing epoch must reject the orphan's
// late writes.
func (m *DMutex) Orphan() {
	_ = m.stopRenewal()
}

// Sequencer enforces a global turn order across replicas: each event of an
// interleaving executes only when the shared counter reaches its position.
type Sequencer struct {
	client *Client
	key    string
	retry  time.Duration
	// noBlock disables the server-side blocking wait: set via SetBlocking,
	// or latched permanently when the server rejects WAITGE as unknown.
	noBlock bool

	histTurnWait *telemetry.Histogram // nil-safe: time blocked in WaitTurn
}

// NewSequencer builds a sequencer on the given counter key.
func NewSequencer(client *Client, key string, retry time.Duration) *Sequencer {
	return &Sequencer{client: client, key: key, retry: retry}
}

// SetMetrics attaches a latency histogram recording how long each
// successful WaitTurn blocked. Call before use; nil records nothing.
func (s *Sequencer) SetMetrics(turnWait *telemetry.Histogram) {
	s.histTurnWait = turnWait
}

// SetBlocking toggles the server-side blocking wait (on by default). Off
// forces the 1ms polling loop — the polling baseline for benchmarks, or a
// belt for servers whose WAITGE is suspect.
func (s *Sequencer) SetBlocking(on bool) {
	s.noBlock = !on
}

// Reset sets the counter to zero.
func (s *Sequencer) Reset() error {
	return s.client.Set(s.key, "0")
}

// blockingTurnChunk bounds how long one WAITGE parks on the server.
// Chunking keeps context cancellation prompt — the client only notices a
// dead context between chunks — while a ready turn still costs exactly
// one round trip.
const blockingTurnChunk = 100 * time.Millisecond

// WaitTurn blocks until the shared counter equals turn. The fast path is
// a server-side blocking WAITGE issued in ~100ms chunks: one round trip
// when the turn is ready, zero polls while it is not. Request errors
// downgrade to the polling loop — permanently for this sequencer when the
// server does not know WAITGE, for the remainder of the call otherwise —
// preserving outage tolerance: polling treats errors as transient (the
// client reconnects underneath) and continues until the context is done,
// so a lock-server outage wedges the turn — visibly, bounded by the
// caller's deadline — instead of crashing the replay.
func (s *Sequencer) WaitTurn(ctx context.Context, turn int64) error {
	started := time.Now()
	for !s.noBlock {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("lockserver: wait turn %d: %w", turn, err)
		}
		chunk := blockingTurnChunk
		if deadline, ok := ctx.Deadline(); ok {
			if rem := time.Until(deadline); rem < chunk {
				chunk = rem
			}
		}
		cur, err := s.client.WaitGE(s.key, turn, chunk)
		if err != nil {
			if errors.Is(err, ErrBlockingUnsupported) {
				s.noBlock = true
			}
			break // fall back to polling: outage or pre-WAITGE server
		}
		if cur == turn {
			s.histTurnWait.ObserveDuration(time.Since(started))
			return nil
		}
		if cur > turn {
			return fmt.Errorf("lockserver: turn %d already passed (at %d)", turn, cur)
		}
		// cur < turn: the chunk timed out; re-check the context and park
		// again.
	}
	return s.pollTurn(ctx, turn, started)
}

// pollTurn is the 1ms-polling WaitTurn body, kept as the fallback when
// blocking waits are unavailable or erroring.
func (s *Sequencer) pollTurn(ctx context.Context, turn int64, started time.Time) error {
	for {
		v, ok, err := s.client.Get(s.key)
		if err == nil {
			cur := int64(0)
			if ok {
				cur, err = strconv.ParseInt(v, 10, 64)
				if err != nil {
					return fmt.Errorf("lockserver: sequencer key corrupt: %w", err)
				}
			}
			if cur == turn {
				s.histTurnWait.ObserveDuration(time.Since(started))
				return nil
			}
			if cur > turn {
				return fmt.Errorf("lockserver: turn %d already passed (at %d)", turn, cur)
			}
		} else if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("lockserver: wait turn %d: %w (last error: %v)", turn, ctxErr, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(s.retry):
		}
	}
}

// Advance increments the shared counter, handing the turn to the next
// event.
func (s *Sequencer) Advance() (int64, error) {
	return s.client.Incr(s.key)
}
