package lockserver

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client is a minimal RESP client for the lock server. Safe for concurrent
// use: requests are serialized over one connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a lock server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("lockserver: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close shuts the connection.
func (c *Client) Close() error { return c.conn.Close() }

// reply is the decoded RESP response.
type reply struct {
	kind  byte // '+', '-', ':', '$'
	str   string
	n     int64
	isNil bool
}

func (c *Client) do(args ...string) (reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(&b, "$%d\r\n%s\r\n", len(a), a)
	}
	if _, err := c.w.WriteString(b.String()); err != nil {
		return reply{}, err
	}
	if err := c.w.Flush(); err != nil {
		return reply{}, err
	}
	return c.readReply()
}

func (c *Client) readReply() (reply, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return reply{}, err
	}
	line = strings.TrimRight(line, "\r\n")
	if line == "" {
		return reply{}, errors.New("lockserver: empty reply")
	}
	switch line[0] {
	case '+':
		return reply{kind: '+', str: line[1:]}, nil
	case '-':
		return reply{kind: '-', str: line[1:]}, nil
	case ':':
		n, err := strconv.ParseInt(line[1:], 10, 64)
		if err != nil {
			return reply{}, err
		}
		return reply{kind: ':', n: n}, nil
	case '$':
		n, err := strconv.Atoi(line[1:])
		if err != nil {
			return reply{}, err
		}
		if n < 0 {
			return reply{kind: '$', isNil: true}, nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(c.r, buf); err != nil {
			return reply{}, err
		}
		return reply{kind: '$', str: string(buf[:n])}, nil
	default:
		return reply{}, fmt.Errorf("lockserver: unexpected reply %q", line)
	}
}

// Ping checks liveness.
func (c *Client) Ping() error {
	rep, err := c.do("PING")
	if err != nil {
		return err
	}
	if rep.kind != '+' || rep.str != "PONG" {
		return fmt.Errorf("lockserver: unexpected ping reply %+v", rep)
	}
	return nil
}

// SetNX sets key=value with a TTL only if absent; reports acquisition.
func (c *Client) SetNX(key, value string, ttl time.Duration) (bool, error) {
	rep, err := c.do("SET", key, value, "NX", "PX", strconv.FormatInt(ttl.Milliseconds(), 10))
	if err != nil {
		return false, err
	}
	if rep.kind == '-' {
		return false, errors.New(rep.str)
	}
	return !rep.isNil && rep.kind == '+', nil
}

// Set writes key=value unconditionally (no TTL).
func (c *Client) Set(key, value string) error {
	rep, err := c.do("SET", key, value)
	if err != nil {
		return err
	}
	if rep.kind == '-' {
		return errors.New(rep.str)
	}
	return nil
}

// Get reads key.
func (c *Client) Get(key string) (string, bool, error) {
	rep, err := c.do("GET", key)
	if err != nil {
		return "", false, err
	}
	if rep.kind == '-' {
		return "", false, errors.New(rep.str)
	}
	if rep.isNil {
		return "", false, nil
	}
	return rep.str, true, nil
}

// Del removes key.
func (c *Client) Del(key string) (bool, error) {
	rep, err := c.do("DEL", key)
	if err != nil {
		return false, err
	}
	return rep.n == 1, nil
}

// Incr increments the counter at key.
func (c *Client) Incr(key string) (int64, error) {
	rep, err := c.do("INCR", key)
	if err != nil {
		return 0, err
	}
	if rep.kind == '-' {
		return 0, errors.New(rep.str)
	}
	return rep.n, nil
}

// CompareAndDelete removes key iff its value equals expect.
func (c *Client) CompareAndDelete(key, expect string) (bool, error) {
	rep, err := c.do("CAD", key, expect)
	if err != nil {
		return false, err
	}
	return rep.n == 1, nil
}

// DMutex is a distributed mutex over a shared key, in the style of the
// Redis Redlock pattern the paper uses: acquisition is SET key token NX PX,
// release is an atomic compare-and-delete of the holder's token.
type DMutex struct {
	client *Client
	key    string
	token  string
	ttl    time.Duration
	retry  time.Duration
}

// NewDMutex builds a mutex on key with the given token (must be unique per
// holder), lock TTL, and retry interval.
func NewDMutex(client *Client, key, token string, ttl, retry time.Duration) *DMutex {
	return &DMutex{client: client, key: key, token: token, ttl: ttl, retry: retry}
}

// Lock blocks until the mutex is acquired or the context is done.
func (m *DMutex) Lock(ctx context.Context) error {
	for {
		ok, err := m.client.SetNX(m.key, m.token, m.ttl)
		if err != nil {
			return fmt.Errorf("lockserver: acquire %s: %w", m.key, err)
		}
		if ok {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(m.retry):
		}
	}
}

// Unlock releases the mutex if this holder still owns it.
func (m *DMutex) Unlock() error {
	ok, err := m.client.CompareAndDelete(m.key, m.token)
	if err != nil {
		return fmt.Errorf("lockserver: release %s: %w", m.key, err)
	}
	if !ok {
		return fmt.Errorf("lockserver: release %s: not the holder (token %s)", m.key, m.token)
	}
	return nil
}

// Sequencer enforces a global turn order across replicas: each event of an
// interleaving executes only when the shared counter reaches its position.
type Sequencer struct {
	client *Client
	key    string
	retry  time.Duration
}

// NewSequencer builds a sequencer on the given counter key.
func NewSequencer(client *Client, key string, retry time.Duration) *Sequencer {
	return &Sequencer{client: client, key: key, retry: retry}
}

// Reset sets the counter to zero.
func (s *Sequencer) Reset() error {
	return s.client.Set(s.key, "0")
}

// WaitTurn blocks until the shared counter equals turn.
func (s *Sequencer) WaitTurn(ctx context.Context, turn int64) error {
	for {
		v, ok, err := s.client.Get(s.key)
		if err != nil {
			return err
		}
		cur := int64(0)
		if ok {
			cur, err = strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("lockserver: sequencer key corrupt: %w", err)
			}
		}
		if cur == turn {
			return nil
		}
		if cur > turn {
			return fmt.Errorf("lockserver: turn %d already passed (at %d)", turn, cur)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(s.retry):
		}
	}
}

// Advance increments the shared counter, handing the turn to the next
// event.
func (s *Sequencer) Advance() (int64, error) {
	return s.client.Incr(s.key)
}
