package lockserver

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestStoreWaitGEImmediate(t *testing.T) {
	s := NewStore()
	s.Set("n", "3", false, 0)
	cur, err := s.WaitGE("n", 2, time.Second, nil)
	if err != nil || cur != 3 {
		t.Fatalf("WaitGE on a satisfied counter = %d, %v; want 3, nil", cur, err)
	}
	// A missing key reads 0: target 0 is satisfied without a write.
	cur, err = s.WaitGE("absent", 0, time.Second, nil)
	if err != nil || cur != 0 {
		t.Fatalf("WaitGE on a missing key = %d, %v; want 0, nil", cur, err)
	}
}

func TestStoreWaitGEWakesOnIncr(t *testing.T) {
	s := NewStore()
	done := make(chan int64, 1)
	go func() {
		cur, err := s.WaitGE("n", 2, 5*time.Second, nil)
		if err != nil {
			t.Error(err)
		}
		done <- cur
	}()
	time.Sleep(10 * time.Millisecond)
	if _, err := s.Incr("n"); err != nil {
		t.Fatal(err)
	}
	select {
	case cur := <-done:
		t.Fatalf("WaitGE woke at %d, below target", cur)
	case <-time.After(30 * time.Millisecond):
	}
	if _, err := s.Incr("n"); err != nil {
		t.Fatal(err)
	}
	select {
	case cur := <-done:
		if cur != 2 {
			t.Fatalf("WaitGE = %d; want 2", cur)
		}
	case <-time.After(time.Second):
		t.Fatal("WaitGE never woke after the counter reached its target")
	}
}

func TestStoreWaitGETimeoutAndCancel(t *testing.T) {
	s := NewStore()
	start := time.Now()
	cur, err := s.WaitGE("n", 5, 30*time.Millisecond, nil)
	if err != nil || cur != 0 {
		t.Fatalf("timed-out WaitGE = %d, %v; want 0, nil", cur, err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("WaitGE overslept its timeout")
	}

	cancel := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(cancel)
	}()
	start = time.Now()
	if _, err := s.WaitGE("n", 5, 5*time.Second, cancel); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("WaitGE ignored its cancel channel")
	}
}

func TestStoreWaitGENonInteger(t *testing.T) {
	s := NewStore()
	s.Set("n", "banana", false, 0)
	if _, err := s.WaitGE("n", 1, time.Second, nil); err == nil {
		t.Fatal("WaitGE on a non-integer value must error")
	}
}

func TestClientWaitGEOverTCP(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	waiter, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()
	writer, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()

	woke := make(chan int64, 1)
	go func() {
		cur, err := waiter.WaitGE("turn", 1, 5*time.Second)
		if err != nil {
			t.Error(err)
		}
		woke <- cur
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := writer.Incr("turn"); err != nil {
		t.Fatal(err)
	}
	select {
	case cur := <-woke:
		if cur != 1 {
			t.Fatalf("WAITGE = %d; want 1", cur)
		}
	case <-time.After(time.Second):
		t.Fatal("parked WAITGE never woke on the increment")
	}
}

// Closing the server must promptly unpark every blocked WAITGE instead of
// deadlocking Close behind parked connection handlers.
func TestServerCloseUnblocksWaitGE(t *testing.T) {
	srv := NewServer(NewStore())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	returned := make(chan struct{})
	go func() {
		_, _ = c.WaitGE("turn", 1, 10*time.Second)
		close(returned)
	}()
	time.Sleep(20 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		_ = srv.Close()
		close(closed)
	}()
	for _, ch := range []chan struct{}{closed, returned} {
		select {
		case <-ch:
		case <-time.After(2 * time.Second):
			t.Fatal("server Close wedged behind a parked WAITGE")
		}
	}
}

// stubNoWaitGE is a pre-WAITGE lock server: every WAITGE gets "unknown
// command", everything else gets a nil bulk (missing key). It counts the
// WAITGE attempts so tests can pin the client's latch-once fallback.
func stubNoWaitGE(t *testing.T) (addr string, waitges *atomic.Int64, done func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := bufio.NewReader(conn)
				for {
					args, err := readCommand(r)
					if err != nil {
						return
					}
					var rep string
					switch strings.ToUpper(args[0]) {
					case "WAITGE":
						n.Add(1)
						rep = respError("unknown command " + args[0])
					case "PING":
						rep = respSimple("PONG")
					default:
						rep = respNil()
					}
					if _, err := conn.Write([]byte(rep)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), &n, func() { _ = ln.Close() }
}

// Against a server without WAITGE the client surfaces
// ErrBlockingUnsupported, and the sequencer latches onto the polling path
// permanently — one probe, not one per turn.
func TestSequencerFallsBackOnUnsupportedServer(t *testing.T) {
	addr, waitges, done := stubNoWaitGE(t)
	defer done()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.WaitGE("turn", 1, time.Millisecond); !errors.Is(err, ErrBlockingUnsupported) {
		t.Fatalf("WaitGE against a pre-WAITGE server = %v; want ErrBlockingUnsupported", err)
	}

	seq := NewSequencer(c, "turn", time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	// The stub answers every GET with nil => counter 0, so turn 0 is ready.
	if err := seq.WaitTurn(ctx, 0); err != nil {
		t.Fatalf("WaitTurn via polling fallback: %v", err)
	}
	if err := seq.WaitTurn(ctx, 0); err != nil {
		t.Fatal(err)
	}
	// One probe from the explicit WaitGE above, one from the first
	// WaitTurn; the second WaitTurn must not probe again.
	if got := waitges.Load(); got != 2 {
		t.Fatalf("server saw %d WAITGEs; want 2 (fallback must latch)", got)
	}
}

func TestBlockingWaitTurnWakesOnAdvance(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	waiter, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()
	advancer, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer advancer.Close()

	seq := NewSequencer(waiter, "turn", time.Millisecond)
	other := NewSequencer(advancer, "turn", time.Millisecond)
	go func() {
		time.Sleep(30 * time.Millisecond)
		if _, err := other.Advance(); err != nil {
			t.Error(err)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := seq.WaitTurn(ctx, 1); err != nil {
		t.Fatalf("blocking WaitTurn: %v", err)
	}
}

// The blocking wait chunks its server-side timeout so a dead context is
// noticed promptly even when the turn never comes.
func TestBlockingWaitTurnHonorsDeadline(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	seq := NewSequencer(c, "turn", time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = seq.WaitTurn(ctx, 99)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitTurn on a turn that never comes = %v; want deadline", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("blocking WaitTurn took %v to honor its deadline", elapsed)
	}
}

func TestUnlockAdvancePipelined(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if ok, err := c.SetNX("mu", "tok", time.Second); err != nil || !ok {
		t.Fatalf("SetNX = %v, %v", ok, err)
	}
	next, err := c.UnlockAdvance("mu", "tok", "turn")
	if err != nil || next != 1 {
		t.Fatalf("UnlockAdvance = %d, %v; want 1, nil", next, err)
	}
	if _, found, _ := c.Get("mu"); found {
		t.Fatal("mutex still held after UnlockAdvance")
	}
	if v, _, _ := c.Get("turn"); v != "1" {
		t.Fatalf("turn counter = %q; want 1", v)
	}
}

func TestUnlockAdvanceDetectsLeaseLoss(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if ok, err := c.SetNX("mu", "tok", time.Second); err != nil || !ok {
		t.Fatalf("SetNX = %v, %v", ok, err)
	}
	if _, err := c.Del("mu"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UnlockAdvance("mu", "tok", "turn"); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("UnlockAdvance after lease loss = %v; want ErrLeaseLost", err)
	}
}

// Abandon releases a held mutex immediately — the epoch-fenced session
// teardown path, where waiting out the TTL would pin server memory.
func TestDMutexAbandonReleases(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	m := NewDMutex(c1, "mu", "tok", time.Minute, time.Millisecond)
	if err := m.Lock(context.Background()); err != nil {
		t.Fatal(err)
	}
	m.Abandon()
	if ok, err := c2.SetNX("mu", "rival", time.Second); err != nil || !ok {
		t.Fatalf("SetNX after Abandon = %v, %v; want immediate acquisition", ok, err)
	}
	// Abandon on an unheld mutex is a no-op, not a panic.
	m.Abandon()
}
