package lockserver

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestStoreCompareAndExpire(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	s := NewStoreWithClock(clock)
	s.Set("lock", "tokenA", false, 100*time.Millisecond)

	if s.CompareAndExpire("lock", "tokenB", 100*time.Millisecond) {
		t.Fatal("CEX with wrong token must fail")
	}
	now = now.Add(90 * time.Millisecond)
	if !s.CompareAndExpire("lock", "tokenA", 100*time.Millisecond) {
		t.Fatal("CEX with right token must succeed")
	}
	// The renewal pushed expiry out: 90ms+100ms > the original 100ms.
	now = now.Add(90 * time.Millisecond)
	if _, ok := s.Get("lock"); !ok {
		t.Fatal("renewed lease must still be live")
	}
	now = now.Add(11 * time.Millisecond)
	if s.CompareAndExpire("lock", "tokenA", 100*time.Millisecond) {
		t.Fatal("CEX on an expired key must fail")
	}
}

func TestClientCompareAndExpire(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if ok, err := c.SetNX("lock", "me", 50*time.Millisecond); err != nil || !ok {
		t.Fatalf("SetNX = %v, %v", ok, err)
	}
	ok, err := c.CompareAndExpire("lock", "me", time.Second)
	if err != nil || !ok {
		t.Fatalf("CEX own lease = %v, %v", ok, err)
	}
	time.Sleep(80 * time.Millisecond)
	if _, found, _ := c.Get("lock"); !found {
		t.Fatal("renewed lease expired despite CEX")
	}
	if ok, _ := c.CompareAndExpire("lock", "impostor", time.Second); ok {
		t.Fatal("CEX with wrong token must fail")
	}
}

// A server restart between requests must be invisible to the client: the
// request loop re-dials and retries.
func TestClientReconnectsAfterServerRestart(t *testing.T) {
	srv := NewServer(NewStore())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReconnect(10, 5*time.Millisecond)
	if err := c.Set("k", "v"); err != nil {
		t.Fatal(err)
	}

	_ = srv.Close()
	srv2 := NewServer(NewStore())
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	defer srv2.Close()

	// The old connection is dead; the call must reconnect and succeed
	// against the restarted server.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after restart: %v", err)
	}
	if err := c.Set("k2", "w"); err != nil {
		t.Fatalf("set after restart: %v", err)
	}
}

// A fault hook models a lock-server outage window: requests fail without
// touching the wire, then heal when the hook clears.
func TestClientFaultHookOutage(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReconnect(2, time.Millisecond)

	outage := errors.New("injected outage")
	c.SetFaultHook(func(op string, args []string) error { return outage })
	if err := c.Ping(); !errors.Is(err, outage) {
		t.Fatalf("ping during outage = %v; want wrapped injected error", err)
	}
	c.SetFaultHook(nil)
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after outage heals: %v", err)
	}
}

// A hook that fails only the first attempts exercises the retry loop: the
// request must succeed once the fault clears within the attempt budget.
func TestClientRetriesThroughTransientFault(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReconnect(5, time.Millisecond)

	fails := 2
	c.SetFaultHook(func(op string, args []string) error {
		if fails > 0 {
			fails--
			return errors.New("flaky")
		}
		return nil
	})
	if err := c.Ping(); err != nil {
		t.Fatalf("ping through transient fault: %v", err)
	}
}

// AutoRenew keeps a short-TTL lease alive for the whole critical section.
func TestDMutexAutoRenewKeepsLease(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	m := NewDMutex(c1, "lease", "holder", 60*time.Millisecond, time.Millisecond)
	m.AutoRenew(10 * time.Millisecond)
	if err := m.Lock(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Hold well past the raw TTL; renewal must keep the rival out.
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		ok, err := c2.SetNX("lease", "rival", time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("rival acquired the lock while renewal was active")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := m.Unlock(); err != nil {
		t.Fatalf("unlock after renewed hold: %v", err)
	}
}

// A lease lost mid-hold (here: wiped behind the holder's back, as a TTL
// expiry during a lock-server pause would) surfaces as ErrLeaseLost on the
// Lost channel and from Unlock — never a silent double-hold.
func TestDMutexLeaseLostSurfaces(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	m := NewDMutex(c1, "lease", "holder", time.Second, time.Millisecond)
	m.AutoRenew(5 * time.Millisecond)
	if err := m.Lock(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Del("lease"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-m.Lost():
	case <-time.After(2 * time.Second):
		t.Fatal("renewal never noticed the lost lease")
	}
	err = m.Unlock()
	if !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("Unlock after lease loss = %v; want ErrLeaseLost", err)
	}
}

// Unlock with no renewal also detects loss: the compare-and-delete misses
// and the error wraps ErrLeaseLost.
func TestDMutexUnlockDetectsLeaseLoss(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	m := NewDMutex(c, "lease", "holder", time.Second, time.Millisecond)
	if err := m.Lock(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Del("lease"); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlock(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("Unlock = %v; want ErrLeaseLost", err)
	}
}

// DMutex.Lock treats request errors as transient: an outage during
// acquisition stalls until it heals (bounded by ctx), then acquires.
func TestDMutexLockRidesOutOutage(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReconnect(1, time.Millisecond)

	fails := 3
	c.SetFaultHook(func(op string, args []string) error {
		if fails > 0 {
			fails--
			return errors.New("outage")
		}
		return nil
	})
	m := NewDMutex(c, "lease", "holder", time.Second, time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := m.Lock(ctx); err != nil {
		t.Fatalf("lock through outage: %v", err)
	}
	if err := m.Unlock(); err != nil {
		t.Fatal(err)
	}
}

// Sequencer.WaitTurn polls through transient request errors instead of
// aborting the replay; a permanent outage is bounded by the context.
func TestSequencerWaitTurnToleratesOutage(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReconnect(1, time.Millisecond)

	seq := NewSequencer(c, "turn", time.Millisecond)
	if err := seq.Reset(); err != nil {
		t.Fatal(err)
	}

	fails := 3
	c.SetFaultHook(func(op string, args []string) error {
		if op == "GET" && fails > 0 {
			fails--
			return errors.New("outage")
		}
		return nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := seq.WaitTurn(ctx, 0); err != nil {
		t.Fatalf("WaitTurn through outage: %v", err)
	}

	// Permanent outage: the wait must return the context error, promptly.
	c.SetFaultHook(func(op string, args []string) error { return errors.New("down") })
	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	start := time.Now()
	err = seq.WaitTurn(ctx2, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitTurn during permanent outage = %v; want deadline", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("WaitTurn took %v to honor its deadline", elapsed)
	}
}
