// Package lockserver provides the distributed-locking substrate ER-π uses
// to enforce event order during replay (paper §4.3). It contains a small
// Redis-compatible key-value server speaking a RESP subset over TCP
// (SET [NX] [PX], GET, DEL, INCR, CAD, CEX, PING), a reconnecting client,
// a Redlock-style distributed mutex with lease renewal, and a turn
// sequencer built on the mutex.
//
// The paper deploys "a mutex with a shared key managed by a Redis server";
// this package is that server and mutex, built from the standard library.
package lockserver

import (
	"strconv"
	"sync"
	"time"
)

// Store is the in-memory key-value state with per-key expiry. The clock is
// injectable so that TTL behaviour is testable without sleeping.
type Store struct {
	mu   sync.Mutex
	data map[string]entry
	now  func() time.Time
	// watchers holds one notification channel per key with blocked WaitGE
	// callers; any mutation of the key closes (and replaces) the channel.
	watchers map[string]chan struct{}
}

type entry struct {
	value     string
	expiresAt time.Time // zero = no expiry
}

// NewStore returns an empty store using the real clock.
func NewStore() *Store {
	return &Store{data: make(map[string]entry), now: time.Now, watchers: make(map[string]chan struct{})}
}

// NewStoreWithClock returns a store with an injected clock (tests).
func NewStoreWithClock(now func() time.Time) *Store {
	return &Store{data: make(map[string]entry), now: now, watchers: make(map[string]chan struct{})}
}

// watchLocked returns the notification channel for key, creating it on
// first use. Callers hold s.mu.
func (s *Store) watchLocked(key string) chan struct{} {
	ch, ok := s.watchers[key]
	if !ok {
		ch = make(chan struct{})
		s.watchers[key] = ch
	}
	return ch
}

// notifyLocked wakes every WaitGE blocked on key. Callers hold s.mu.
func (s *Store) notifyLocked(key string) {
	if ch, ok := s.watchers[key]; ok {
		close(ch)
		delete(s.watchers, key)
	}
}

func (s *Store) expiredLocked(k string) bool {
	e, ok := s.data[k]
	if !ok {
		return true
	}
	if !e.expiresAt.IsZero() && !s.now().Before(e.expiresAt) {
		delete(s.data, k)
		return true
	}
	return false
}

// Set writes key=value. When nx is true the write only happens if the key
// is absent (or expired); px>0 sets a TTL. Returns whether the write
// happened.
func (s *Store) Set(key, value string, nx bool, px time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if nx && !s.expiredLocked(key) {
		return false
	}
	e := entry{value: value}
	if px > 0 {
		e.expiresAt = s.now().Add(px)
	}
	s.data[key] = e
	s.notifyLocked(key)
	return true
}

// Get returns the live value for key.
func (s *Store) Get(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.expiredLocked(key) {
		return "", false
	}
	return s.data[key].value, true
}

// Del removes key, reporting whether it was present.
func (s *Store) Del(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.expiredLocked(key) {
		return false
	}
	delete(s.data, key)
	s.notifyLocked(key)
	return true
}

// Incr atomically increments the integer value at key (missing = 0) and
// returns the new value.
func (s *Store) Incr(key string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	if !s.expiredLocked(key) {
		parsed, err := strconv.ParseInt(s.data[key].value, 10, 64)
		if err != nil {
			return 0, err
		}
		n = parsed
	}
	n++
	s.data[key] = entry{value: strconv.FormatInt(n, 10)}
	s.notifyLocked(key)
	return n, nil
}

// CompareAndDelete removes key only if its current value equals expect:
// the atomic unlock primitive (Redis does this with a Lua script; we
// provide it as a first-class command). Returns whether the delete
// happened.
func (s *Store) CompareAndDelete(key, expect string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.expiredLocked(key) {
		return false
	}
	if s.data[key].value != expect {
		return false
	}
	delete(s.data, key)
	s.notifyLocked(key)
	return true
}

// CompareAndExpire refreshes key's TTL to px only if its current value
// equals expect: the atomic lease-renewal primitive. A holder can extend
// its own lock without racing a takeover — if the lease already expired
// and another holder acquired it, the value no longer matches and the
// renewal reports false. px<=0 clears the expiry.
func (s *Store) CompareAndExpire(key, expect string, px time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.expiredLocked(key) {
		return false
	}
	if s.data[key].value != expect {
		return false
	}
	e := entry{value: expect}
	if px > 0 {
		e.expiresAt = s.now().Add(px)
	}
	s.data[key] = e
	return true
}

// WaitGE blocks until the integer value at key (missing = 0) reaches at
// least target, the timeout elapses, or cancel closes, and returns the
// last value read. The caller distinguishes the cases by comparing the
// returned value against target — a sub-target return means the wait
// timed out or was cancelled. A non-integer value is an error.
//
// This is the server side of the blocking sequencer turn: instead of the
// client polling GET every millisecond, one WAITGE request parks here on
// the key's notification channel and wakes on the Incr/Set that hands the
// turn over.
func (s *Store) WaitGE(key string, target int64, timeout time.Duration, cancel <-chan struct{}) (int64, error) {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		var cur int64
		if !s.expiredLocked(key) {
			parsed, err := strconv.ParseInt(s.data[key].value, 10, 64)
			if err != nil {
				s.mu.Unlock()
				return 0, err
			}
			cur = parsed
		}
		if cur >= target {
			s.mu.Unlock()
			return cur, nil
		}
		ch := s.watchLocked(key)
		s.mu.Unlock()

		remaining := time.Until(deadline)
		if remaining <= 0 {
			return cur, nil
		}
		timer := time.NewTimer(remaining)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			return cur, nil
		case <-cancel:
			timer.Stop()
			return cur, nil
		}
	}
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k := range s.data {
		if !s.expiredLocked(k) {
			n++
		}
	}
	return n
}
