package lockserver

import (
	"context"
	"errors"
	"testing"
	"time"
)

// deadServerClient returns a client whose server has gone away, tuned so
// the full reconnect backoff ladder takes multiple seconds — long enough
// that only an interruptible sleep lets the tests below pass quickly.
func deadServerClient(t *testing.T) *Client {
	t.Helper()
	srv := NewServer(NewStore())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// 8 attempts at 500ms doubling: ~1 minute of backoff if uninterrupted.
	c.SetReconnect(8, 500*time.Millisecond)
	return c
}

// TestContextCancelAbortsBackoff pins the satellite fix: a context
// cancelled while the client sleeps in its reconnect backoff must abort
// the request promptly instead of pinning the caller through the ladder.
func TestContextCancelAbortsBackoff(t *testing.T) {
	c := deadServerClient(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.SetNXContext(ctx, "k", "v", time.Second)
	if err == nil {
		t.Fatal("SetNXContext succeeded against a dead server")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded in the chain", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("cancellation took %v; the backoff sleep is not context-aware", took)
	}
}

// TestCloseAbortsBackoff: tearing the client down mid-outage must wake a
// request sleeping in its backoff with ErrClientClosed.
func TestCloseAbortsBackoff(t *testing.T) {
	c := deadServerClient(t)
	errCh := make(chan error, 1)
	go func() {
		_, err := c.SetNX("k", "v", time.Second)
		errCh <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the request enter its backoff sleep
	start := time.Now()
	_ = c.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClientClosed) {
			t.Fatalf("error = %v, want ErrClientClosed in the chain", err)
		}
		if took := time.Since(start); took > time.Second {
			t.Fatalf("Close took %v to abort the request", took)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request still pinned in backoff after Close")
	}
}

// TestOrphanLeavesLease pins DMutex.Orphan, the SIGKILL simulation: the
// renewal goroutine stops but the key is left to expire on its own, so a
// successor can only take the lock after the TTL runs out.
func TestOrphanLeavesLease(t *testing.T) {
	srv := NewServer(NewStore())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	ttl := 200 * time.Millisecond
	m1 := NewDMutex(c1, "orphan-key", "holder-1", ttl, ttl/10)
	m1.AutoRenew(0)
	if err := m1.Lock(context.Background()); err != nil {
		t.Fatal(err)
	}
	m1.Orphan()

	// Immediately after the orphan the key must still be held.
	if val, found, err := c2.Get("orphan-key"); err != nil || !found || val != "holder-1" {
		t.Fatalf("key after Orphan = %q/%v/%v, want held by holder-1", val, found, err)
	}

	// A successor acquires only once the TTL expires — and because nothing
	// renews anymore, that must happen within a couple of TTLs.
	m2 := NewDMutex(c2, "orphan-key", "holder-2", ttl, ttl/10)
	ctx, cancel := context.WithTimeout(context.Background(), 4*ttl)
	defer cancel()
	start := time.Now()
	if err := m2.Lock(ctx); err != nil {
		t.Fatalf("successor could not take the orphaned lease: %v", err)
	}
	if took := time.Since(start); took < ttl/2 {
		t.Fatalf("successor acquired after %v, before the orphaned lease expired (ttl %v)", took, ttl)
	}
	_ = m2.Unlock()
}
