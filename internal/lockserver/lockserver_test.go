package lockserver

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestStoreSetGetDel(t *testing.T) {
	s := NewStore()
	if !s.Set("k", "v", false, 0) {
		t.Fatal("plain set must succeed")
	}
	v, ok := s.Get("k")
	if !ok || v != "v" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	if s.Set("k", "w", true, 0) {
		t.Fatal("NX on existing key must fail")
	}
	if !s.Del("k") {
		t.Fatal("del of existing key")
	}
	if s.Del("k") {
		t.Fatal("del of missing key")
	}
	if !s.Set("k", "w", true, 0) {
		t.Fatal("NX after delete must succeed")
	}
}

func TestStoreTTL(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	s := NewStoreWithClock(clock)
	s.Set("k", "v", false, 100*time.Millisecond)
	if _, ok := s.Get("k"); !ok {
		t.Fatal("key must be live before expiry")
	}
	now = now.Add(101 * time.Millisecond)
	if _, ok := s.Get("k"); ok {
		t.Fatal("key must expire")
	}
	// NX succeeds on an expired key — lock TTL recovery after crash.
	if !s.Set("k", "w", true, 0) {
		t.Fatal("NX on expired key must succeed")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStoreIncr(t *testing.T) {
	s := NewStore()
	for want := int64(1); want <= 3; want++ {
		n, err := s.Incr("c")
		if err != nil || n != want {
			t.Fatalf("Incr = %d, %v; want %d", n, err, want)
		}
	}
	s.Set("bad", "notanint", false, 0)
	if _, err := s.Incr("bad"); err == nil {
		t.Fatal("Incr of non-integer must fail")
	}
}

func TestStoreCompareAndDelete(t *testing.T) {
	s := NewStore()
	s.Set("lock", "tokenA", false, 0)
	if s.CompareAndDelete("lock", "tokenB") {
		t.Fatal("CAD with wrong token must fail")
	}
	if !s.CompareAndDelete("lock", "tokenA") {
		t.Fatal("CAD with right token must succeed")
	}
	if s.CompareAndDelete("lock", "tokenA") {
		t.Fatal("CAD on missing key must fail")
	}
}

func startServer(t *testing.T) (addr string, done func()) {
	t.Helper()
	srv := NewServer(NewStore())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr, func() { _ = srv.Close() }
}

func TestServerEndToEnd(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	ok, err := c.SetNX("lock", "tok", time.Minute)
	if err != nil || !ok {
		t.Fatalf("SetNX = %v, %v", ok, err)
	}
	ok, err = c.SetNX("lock", "tok2", time.Minute)
	if err != nil || ok {
		t.Fatalf("second SetNX must fail, got %v %v", ok, err)
	}
	v, found, err := c.Get("lock")
	if err != nil || !found || v != "tok" {
		t.Fatalf("Get = %q %v %v", v, found, err)
	}
	if _, found, _ := c.Get("missing"); found {
		t.Fatal("missing key must be nil")
	}
	n, err := c.Incr("counter")
	if err != nil || n != 1 {
		t.Fatalf("Incr = %d %v", n, err)
	}
	released, err := c.CompareAndDelete("lock", "wrong")
	if err != nil || released {
		t.Fatal("CAD with wrong token must fail")
	}
	released, err = c.CompareAndDelete("lock", "tok")
	if err != nil || !released {
		t.Fatalf("CAD = %v %v", released, err)
	}
	deleted, err := c.Del("counter")
	if err != nil || !deleted {
		t.Fatalf("Del = %v %v", deleted, err)
	}
	if err := c.Set("plain", "x"); err != nil {
		t.Fatal(err)
	}
}

func TestDMutexMutualExclusion(t *testing.T) {
	addr, done := startServer(t)
	defer done()

	const holders = 8
	const iterations = 20
	var critical int
	var inside int32
	var mu sync.Mutex // guards critical section bookkeeping checks
	var wg sync.WaitGroup
	errs := make(chan error, holders)
	for i := 0; i < holders; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			m := NewDMutex(c, "mutex", fmt.Sprintf("holder-%d", id), time.Minute, time.Millisecond)
			for j := 0; j < iterations; j++ {
				if err := m.Lock(context.Background()); err != nil {
					errs <- err
					return
				}
				mu.Lock()
				inside++
				if inside != 1 {
					errs <- fmt.Errorf("mutual exclusion violated: %d holders inside", inside)
				}
				critical++
				inside--
				mu.Unlock()
				if err := m.Unlock(); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if critical != holders*iterations {
		t.Fatalf("critical sections = %d, want %d", critical, holders*iterations)
	}
}

func TestDMutexUnlockNotHolder(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := NewDMutex(c, "m", "me", time.Minute, time.Millisecond)
	if err := m.Unlock(); err == nil {
		t.Fatal("unlock without lock must fail")
	}
	if err := m.Lock(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Another holder steals the key after TTL expiry simulation: delete it.
	if _, err := c.Del("m"); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlock(); err == nil {
		t.Fatal("unlock after losing the lock must fail")
	}
}

func TestDMutexLockContextCancel(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	first := NewDMutex(c, "m", "first", time.Minute, time.Millisecond)
	if err := first.Lock(context.Background()); err != nil {
		t.Fatal(err)
	}
	second := NewDMutex(c, "m", "second", time.Minute, time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := second.Lock(ctx); err == nil {
		t.Fatal("blocked lock must respect context cancellation")
	}
}

func TestSequencerOrdersEvents(t *testing.T) {
	addr, done := startServer(t)
	defer done()

	const n = 12
	var order []int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(turn int64) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			seq := NewSequencer(c, "turn", time.Millisecond)
			if err := seq.WaitTurn(context.Background(), turn); err != nil {
				errs <- err
				return
			}
			mu.Lock()
			order = append(order, turn)
			mu.Unlock()
			if _, err := seq.Advance(); err != nil {
				errs <- err
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, turn := range order {
		if turn != int64(i) {
			t.Fatalf("execution order %v violates the assigned turns", order)
		}
	}
}

func TestSequencerTurnAlreadyPassed(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seq := NewSequencer(c, "turn", time.Millisecond)
	if err := seq.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := seq.Advance(); err != nil {
		t.Fatal(err)
	}
	if err := seq.WaitTurn(context.Background(), 0); err == nil {
		t.Fatal("waiting for a passed turn must fail fast")
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	addr, done := startServer(t)
	defer done()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Unknown command produces a RESP error surfaced by the client.
	if _, err := c.do("NONSENSE"); err != nil {
		t.Fatalf("transport error on unknown command: %v", err)
	}
	rep, err := c.do("NONSENSE")
	if err != nil {
		t.Fatal(err)
	}
	if rep.kind != '-' {
		t.Fatalf("expected error reply, got %+v", rep)
	}
}
