package constraints

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/prune"
)

func TestPollMissingDir(t *testing.T) {
	p := NewPoller(filepath.Join(t.TempDir(), "nope"))
	_, found, err := p.Poll()
	if err != nil || found {
		t.Fatalf("missing dir must be quiet: %v %v", found, err)
	}
}

func TestWriteAndPoll(t *testing.T) {
	dir := t.TempDir()
	file := File{
		Groups:         [][]event.ID{{0, 1}},
		TestedReplicas: []event.ReplicaID{"B"},
		IndependentSets: []prune.IndependenceSpec{
			{Events: []event.ID{2, 3}, NonInterfering: []event.ID{4}},
		},
		FailedOps: []prune.FailedOpsSpec{
			{Predecessors: []event.ID{0}, Successors: []event.ID{5}},
		},
	}
	if err := Write(dir, "c1.json", file); err != nil {
		t.Fatal(err)
	}
	p := NewPoller(dir)
	cfg, found, err := p.Poll()
	if err != nil || !found {
		t.Fatalf("poll: %v %v", found, err)
	}
	if len(cfg.Grouping.Extra) != 1 || len(cfg.TestedReplicas) != 1 ||
		len(cfg.IndependentSets) != 1 || len(cfg.FailedOps) != 1 {
		t.Fatalf("config = %+v", cfg)
	}
	if cfg.IndependentSets[0].NonInterfering[0] != 4 {
		t.Fatal("non-interfering lost")
	}
	// Second poll sees nothing new.
	_, found, err = p.Poll()
	if err != nil || found {
		t.Fatalf("re-poll must be quiet: %v %v", found, err)
	}
	// A new file is picked up.
	if err := Write(dir, "c2.json", File{TestedReplicas: []event.ReplicaID{"C"}}); err != nil {
		t.Fatal(err)
	}
	cfg, found, err = p.Poll()
	if err != nil || !found {
		t.Fatalf("poll after new file: %v %v", found, err)
	}
	if len(cfg.TestedReplicas) != 1 || cfg.TestedReplicas[0] != "C" {
		t.Fatalf("second config = %+v", cfg)
	}
}

func TestPollIgnoresNonJSON(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.json"), 0o755); err != nil {
		t.Fatal(err)
	}
	p := NewPoller(dir)
	_, found, err := p.Poll()
	if err != nil || found {
		t.Fatalf("non-json content must be ignored: %v %v", found, err)
	}
}

func TestPollMalformedJSON(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := NewPoller(dir)
	if _, _, err := p.Poll(); err == nil {
		t.Fatal("malformed json must error")
	}
}

func TestFilesMergeInNameOrder(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, "b.json", File{TestedReplicas: []event.ReplicaID{"B"}}); err != nil {
		t.Fatal(err)
	}
	if err := Write(dir, "a.json", File{TestedReplicas: []event.ReplicaID{"A"}}); err != nil {
		t.Fatal(err)
	}
	p := NewPoller(dir)
	cfg, _, err := p.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.TestedReplicas) != 2 || cfg.TestedReplicas[0] != "A" || cfg.TestedReplicas[1] != "B" {
		t.Fatalf("merge order = %v", cfg.TestedReplicas)
	}
}
