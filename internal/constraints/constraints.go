// Package constraints loads developer-provided pruning constraints from a
// directory of JSON files, the runtime channel of the paper's §5.2: "ER-π
// periodically checks for the presence of JSON files in the constraints
// directory. If found, ER-π then consults the files for the new constraints
// to apply, thus further reducing the problem space."
package constraints

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/prune"
)

// File is the JSON schema of one constraints file.
type File struct {
	// Groups lists extra event groups (Algorithm 1 spec_group).
	Groups [][]event.ID `json:"groups,omitempty"`
	// TestedReplicas enables replica-specific pruning (Algorithm 2).
	TestedReplicas []event.ReplicaID `json:"tested_replicas,omitempty"`
	// IndependentSets enables event-independence pruning (Algorithm 3).
	IndependentSets []prune.IndependenceSpec `json:"independent_sets,omitempty"`
	// FailedOps enables failed-ops pruning (Algorithm 4).
	FailedOps []prune.FailedOpsSpec `json:"failed_ops,omitempty"`
}

// ToConfig converts the file into a pruning config fragment.
func (f File) ToConfig() prune.Config {
	return prune.Config{
		Grouping:        prune.GroupSpec{Extra: f.Groups},
		TestedReplicas:  f.TestedReplicas,
		IndependentSets: f.IndependentSets,
		FailedOps:       f.FailedOps,
	}
}

// Poller watches a directory for constraint files.
type Poller struct {
	dir  string
	seen map[string]bool
}

// NewPoller builds a poller over dir (which need not exist yet).
func NewPoller(dir string) *Poller {
	return &Poller{dir: dir, seen: make(map[string]bool)}
}

// Poll returns the pruning config merged from any *.json files that
// appeared since the last poll, and whether anything new was found.
func (p *Poller) Poll() (prune.Config, bool, error) {
	var merged prune.Config
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return merged, false, nil
		}
		return merged, false, fmt.Errorf("constraints: read dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	found := false
	for _, name := range names {
		if p.seen[name] {
			continue
		}
		path := filepath.Join(p.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return merged, found, fmt.Errorf("constraints: read %s: %w", name, err)
		}
		var f File
		if err := json.Unmarshal(data, &f); err != nil {
			return merged, found, fmt.Errorf("constraints: parse %s: %w", name, err)
		}
		merged.Merge(f.ToConfig())
		p.seen[name] = true
		found = true
	}
	return merged, found, nil
}

// Write serializes a constraints file into dir (creating it), for tools
// and tests that produce constraints programmatically.
func Write(dir, name string, f File) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("constraints: mkdir: %w", err)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("constraints: marshal: %w", err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("constraints: write %s: %w", path, err)
	}
	return nil
}
