// Todolist: detecting misconception #4 ("sequential IDs are always
// suitable for creating new items in a to-do list", paper §6.2).
//
// Two replicas of a collaborative to-do app create items concurrently.
// With sequential IDs (highest known + 1), both replicas can generate the
// same ID and one item silently overwrites the other. ER-π interleaves the
// creations and detects the clash; switching to replica-unique IDs makes
// the exhaustive replay pass.
//
//	go run ./examples/todolist
package main

import (
	"fmt"
	"os"

	erpi "github.com/er-pi/erpi"
	"github.com/er-pi/erpi/internal/subjects/crdts"
)

func runVariant(name string, flags crdts.Flags) error {
	newCluster := func() (*erpi.Cluster, error) {
		return erpi.NewCluster(map[erpi.ReplicaID]erpi.State{
			"A": crdts.New("A", flags),
			"B": crdts.New("B", flags),
		}), nil
	}
	sess, err := erpi.NewSession(newCluster)
	if err != nil {
		return err
	}
	rec, err := sess.Start()
	if err != nil {
		return err
	}
	// Observations return the generated IDs, anchoring the clash check.
	rec.Observe("A", "todo.create", "buy milk") // event 0
	rec.Sync("A", "B")
	rec.Observe("B", "todo.create", "walk dog") // event 2
	rec.Sync("B", "A")
	rec.Observe("A", "todo.read")

	result, err := sess.End(erpi.NoClash{EventA: 0, EventB: 2})
	if err != nil {
		return err
	}
	fmt.Printf("%-20s explored %3d interleavings: ", name, result.Explored)
	if len(result.Violations) == 0 {
		fmt.Println("no ID clashes")
		return nil
	}
	fmt.Printf("%d interleavings clash, e.g. %s\n", len(result.Violations), result.Violations[0].Err)
	return nil
}

func main() {
	fmt.Println("misconception #4: sequential IDs in a replicated to-do list")
	if err := runVariant("sequential IDs:", crdts.Flags{SequentialIDs: true}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := runVariant("replica-unique IDs:", crdts.Flags{}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("fix (per AMC): derive IDs from the replica's logical clock, not a shared counter")
}
