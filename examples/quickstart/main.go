// Quickstart: integration-testing a replicated grow-only set with ER-π.
//
// The application keeps a replicated set of strings on two replicas. The
// workload adds an element at A and synchronizes to B. ER-π records the
// workload, generates every interleaving, replays each one against fresh
// replicas, and checks the convergence assertion — revealing that a sync
// reordered before the update it should carry leaves the replicas
// diverged (the app relied on delivery order).
//
//	go run ./examples/quickstart
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	erpi "github.com/er-pi/erpi"
)

// gsetState integrates a replicated grow-only set with ER-π by
// implementing erpi.State. A real application would wrap its RDL client
// the same way (or generate the wrapper with erpi-proxygen).
type gsetState struct {
	members map[string]bool
}

func newGSetState() *gsetState { return &gsetState{members: map[string]bool{}} }

// Apply executes a local RDL call.
func (s *gsetState) Apply(op erpi.Op) (string, error) {
	switch op.Name {
	case "add":
		s.members[op.Args[0]] = true
		return "", nil
	case "read":
		return s.Fingerprint(), nil
	default:
		return "", fmt.Errorf("unknown op %s", op.Name)
	}
}

// SyncPayload ships the full state (a state-based CRDT).
func (s *gsetState) SyncPayload() ([]byte, error) { return json.Marshal(s.members) }

// ApplySync merges a received state by set union.
func (s *gsetState) ApplySync(payload []byte) error {
	var other map[string]bool
	if err := json.Unmarshal(payload, &other); err != nil {
		return err
	}
	for e := range other {
		s.members[e] = true
	}
	return nil
}

// Snapshot and Restore let ER-π checkpoint/reset between interleavings.
func (s *gsetState) Snapshot() ([]byte, error) { return s.SyncPayload() }
func (s *gsetState) Restore(snap []byte) error {
	s.members = map[string]bool{}
	return s.ApplySync(snap)
}

// Fingerprint is the canonical state digest used by assertions.
func (s *gsetState) Fingerprint() string {
	var elems []string
	for e := range s.members {
		elems = append(elems, e)
	}
	for i := range elems {
		for j := i + 1; j < len(elems); j++ {
			if elems[j] < elems[i] {
				elems[i], elems[j] = elems[j], elems[i]
			}
		}
	}
	return strings.Join(elems, ",")
}

func main() {
	newCluster := func() (*erpi.Cluster, error) {
		return erpi.NewCluster(map[erpi.ReplicaID]erpi.State{
			"A": newGSetState(),
			"B": newGSetState(),
		}), nil
	}

	sess, err := erpi.NewSession(newCluster)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// ER-π.Start(): everything until End is recorded as events.
	rec, err := sess.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rec.Update("A", "add", "hello")
	rec.Sync("A", "B") // the app assumes this always runs after the add
	rec.Update("B", "add", "world")
	rec.Sync("B", "A")

	// ER-π.End(tests...): generate, prune, replay, assert.
	result, err := sess.End(erpi.Convergence{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("explored %d interleavings in %v\n", result.Explored, result.Duration.Round(1000))
	if len(result.Violations) == 0 {
		fmt.Println("no violations — the integration is order-independent")
		return
	}
	fmt.Printf("%d interleavings violate convergence, e.g.:\n", len(result.Violations))
	fmt.Println(" ", result.Violations[0])
	fmt.Println("lesson: a standalone sync captures whatever state exists when it runs;")
	fmt.Println("the app must not assume delivery order (misconception #1/#5).")
}
