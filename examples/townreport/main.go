// Townreport: the paper's motivating example (§2.3) end to end.
//
// A town provides a mobile app for reporting issues. Resident A reports an
// overturned trash bin (otb), Resident B reports a pothole (ph), B removes
// the trash-bin report once fixed, and A transmits the issue set to the
// municipality. Seven distributed events interleave in 7! = 5040 ways;
// ER-π's grouping and replica-specific pruning cut that to 19, and the
// exhaustive replay finds the interleavings in which the municipality
// receives the already-fixed issue.
//
//	go run ./examples/townreport
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	erpi "github.com/er-pi/erpi"
)

// issueSet is the app's replicated issue set: a last-write-wins element
// set keyed by issue name (the RDL of the motivating example).
type issueSet struct {
	replica string
	clock   uint64
	adds    map[string]uint64
	rems    map[string]uint64
}

func newIssueSet(replica string) *issueSet {
	return &issueSet{replica: replica, adds: map[string]uint64{}, rems: map[string]uint64{}}
}

func (s *issueSet) live(issue string) bool {
	add, ok := s.adds[issue]
	if !ok {
		return false
	}
	rem, removed := s.rems[issue]
	return !removed || add > rem
}

// Apply implements erpi.State.
func (s *issueSet) Apply(op erpi.Op) (string, error) {
	s.clock++
	switch op.Name {
	case "report":
		s.adds[op.Args[0]] = s.clock
		return "", nil
	case "resolve":
		if !s.live(op.Args[0]) {
			return "", erpi.ErrFailedOp // resolving an unknown issue
		}
		s.rems[op.Args[0]] = s.clock
		return "", nil
	default:
		return "", fmt.Errorf("unknown op %s", op.Name)
	}
}

type issueWire struct {
	Adds  map[string]uint64 `json:"adds"`
	Rems  map[string]uint64 `json:"rems"`
	Clock uint64            `json:"clock"`
}

// SyncPayload implements erpi.State.
func (s *issueSet) SyncPayload() ([]byte, error) {
	return json.Marshal(issueWire{Adds: s.adds, Rems: s.rems, Clock: s.clock})
}

// ApplySync implements erpi.State (LWW merge).
func (s *issueSet) ApplySync(payload []byte) error {
	var w issueWire
	if err := json.Unmarshal(payload, &w); err != nil {
		return err
	}
	for k, t := range w.Adds {
		if t > s.adds[k] {
			s.adds[k] = t
		}
	}
	for k, t := range w.Rems {
		if t > s.rems[k] {
			s.rems[k] = t
		}
	}
	if w.Clock > s.clock {
		s.clock = w.Clock
	}
	return nil
}

// Snapshot / Restore implement erpi.State.
func (s *issueSet) Snapshot() ([]byte, error) { return s.SyncPayload() }
func (s *issueSet) Restore(snap []byte) error {
	s.adds, s.rems, s.clock = map[string]uint64{}, map[string]uint64{}, 0
	return s.ApplySync(snap)
}

// Fingerprint implements erpi.State.
func (s *issueSet) Fingerprint() string {
	var live []string
	for issue := range s.adds {
		if s.live(issue) {
			live = append(live, issue)
		}
	}
	for i := range live {
		for j := i + 1; j < len(live); j++ {
			if live[j] < live[i] {
				live[i], live[j] = live[j], live[i]
			}
		}
	}
	return strings.Join(live, ",")
}

func main() {
	newCluster := func() (*erpi.Cluster, error) {
		return erpi.NewCluster(map[erpi.ReplicaID]erpi.State{
			"A": newIssueSet("A"), // Resident A
			"B": newIssueSet("B"), // Resident B
			"M": newIssueSet("M"), // the municipality
		}), nil
	}

	sess, err := erpi.NewSession(newCluster,
		// Group each update with its synchronization (paper §3.1) and
		// explore on behalf of the municipality (replica-specific pruning).
		erpi.WithGroups([][]erpi.EventID{{0, 1}, {2, 3}, {4, 5}}),
		erpi.WithTestedReplicas("M"),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rec, err := sess.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rec.Update("A", "report", "otb")  // ev_I: A reports the trash bin
	rec.Sync("A", "B")                // sync(ev_I)
	rec.Update("B", "report", "ph")   // ev_II: B reports the pothole
	rec.Sync("B", "A")                // sync(ev_II)
	rec.Update("B", "resolve", "otb") // ev_III: B removes the fixed issue
	rec.Sync("B", "A")                // sync(ev_III)
	rec.Sync("A", "M")                // ev_IV: A transmits to the municipality

	// The test invariant: the municipality receives only the pothole.
	result, err := sess.End(erpi.Custom{
		Label: "municipality-receives-only-ph",
		Fn: func(o *erpi.Outcome) error {
			if got := o.Fingerprints["M"]; got != "ph" {
				return errors.New("municipality received: " + got)
			}
			return nil
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("raw space: 7! = 5040 interleavings\n")
	fmt.Printf("after ER-π pruning: explored %d interleavings (paper: 19) in %v\n",
		result.Explored, result.Duration.Round(1000))
	fmt.Printf("%d interleavings violate the invariant:\n", len(result.Violations))
	for i, v := range result.Violations {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(result.Violations)-3)
			break
		}
		fmt.Println(" ", v)
	}
}
