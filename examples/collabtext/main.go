// Collabtext: detecting misconception #3 ("moving items in a List doesn't
// cause duplication", paper §6.2) in a collaborative list.
//
// Two replicas of a shared list concurrently move the same element to
// different positions. A move implemented as delete+insert duplicates the
// element; a winner-position move (Kleppmann's fix) keeps exactly one
// copy. ER-π interleaves the moves and reports duplicates.
//
//	go run ./examples/collabtext
package main

import (
	"fmt"
	"os"

	erpi "github.com/er-pi/erpi"
	"github.com/er-pi/erpi/internal/subjects/crdts"
)

func runVariant(name string, flags crdts.Flags) error {
	newCluster := func() (*erpi.Cluster, error) {
		return erpi.NewCluster(map[erpi.ReplicaID]erpi.State{
			"A": crdts.New("A", flags),
			"B": crdts.New("B", flags),
		}), nil
	}
	sess, err := erpi.NewSession(newCluster,
		// The three list inserts and the first sync are setup: group them
		// into a single unit so exploration focuses on the moves.
		erpi.WithGroups([][]erpi.EventID{{0, 1, 2, 3}}),
	)
	if err != nil {
		return err
	}
	rec, err := sess.Start()
	if err != nil {
		return err
	}
	rec.Update("A", "list.insert", "0", "alpha") // 0
	rec.Update("A", "list.insert", "1", "beta")  // 1
	rec.Update("A", "list.insert", "2", "gamma") // 2
	rec.Sync("A", "B")                           // 3
	rec.Update("A", "list.move", "0", "3")       // 4: A moves alpha to the end
	rec.Sync("A", "B")                           // 5
	rec.Update("B", "list.move", "0", "2")       // 6: B moves its head element
	rec.Sync("B", "A")                           // 7
	rec.Observe("A", "list.read")                // 8

	result, err := sess.End(erpi.NoDuplicates{Event: 8})
	if err != nil {
		return err
	}
	fmt.Printf("%-18s explored %3d interleavings: ", name, result.Explored)
	if len(result.Violations) == 0 {
		fmt.Println("no duplicates")
		return nil
	}
	fmt.Printf("%d interleavings duplicate, e.g. %s\n", len(result.Violations), result.Violations[0].Err)
	return nil
}

func main() {
	fmt.Println("misconception #3: move-as-delete+insert in a replicated list")
	if err := runVariant("naive move:", crdts.Flags{NaiveMove: true}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := runVariant("winner move:", crdts.Flags{}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("fix: designate one position as winning for concurrent moves of the same element")
}
