// Bugreplay: reproducing a previously reported bug (the paper's RQ1) and
// re-pruning with runtime constraints (paper §5.2).
//
// The scenario is Yorkie issue #663 ("Modify the set operation to handle
// nested object values"): 22 events, whose reported manifestation only
// occurs when a nested-object sync overtakes its parent's. The example
// first reproduces the bug with ER-π's initial pruning, then drops a
// constraints file into a watched directory — the developer declaring two
// disjoint-path writes independent after inspecting early interleavings —
// and reproduces again with the further-pruned space.
//
//	go run ./examples/bugreplay
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/constraints"
	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/runner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	bug, ok := bugs.ByName("Yorkie-2")
	if !ok {
		return fmt.Errorf("benchmark missing")
	}
	reported, err := bug.ReportedSignature()
	if err != nil {
		return err
	}
	fmt.Printf("bug report for %s (issue #%d, %d events):\n  %.120s...\n\n",
		bug.Name, bug.Issue, bug.Events, reported)

	scenario, err := bug.Build()
	if err != nil {
		return err
	}
	asserts, err := bug.NewAssertions()
	if err != nil {
		return err
	}

	// Pass 1: initial pruning (event grouping + replica-specific).
	res, err := runner.Run(scenario, runner.Config{
		Mode:            runner.ModeERPi,
		StopOnViolation: true,
		Assertions:      asserts,
	})
	if err != nil {
		return err
	}
	fmt.Printf("pass 1 (initial pruning): reproduced at interleaving #%d in %v\n",
		res.FirstViolation, res.Duration.Round(1000))

	// Pass 2: the developer discovered that two writes touch disjoint
	// paths and drops a constraints file; ER-π picks it up mid-run and
	// re-prunes (event-independence, Algorithm 3).
	dir, err := os.MkdirTemp("", "erpi-constraints-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	err = constraints.Write(dir, "independence.json", constraints.File{
		IndependentSets: []prune.IndependenceSpec{
			{Events: []event.ID{10, 12}}, // footer vs. beta: disjoint paths
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", filepath.Join(dir, "independence.json"))

	poller := constraints.NewPoller(dir)
	scenario2, err := bug.Build()
	if err != nil {
		return err
	}
	asserts2, err := bug.NewAssertions()
	if err != nil {
		return err
	}
	res2, err := runner.Run(scenario2, runner.Config{
		Mode:            runner.ModeERPi,
		StopOnViolation: true,
		Assertions:      asserts2,
		ConstraintPoll:  poller.Poll,
		PollEvery:       10,
	})
	if err != nil {
		return err
	}
	fmt.Printf("pass 2 (+runtime constraints): reproduced at interleaving #%d in %v\n",
		res2.FirstViolation, res2.Duration.Round(1000))

	fmt.Println("\nthe violating interleaving can now be replayed deterministically to debug the fix")
	return nil
}
