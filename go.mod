module github.com/er-pi/erpi

go 1.22
