package erpi_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	erpi "github.com/er-pi/erpi"
	"github.com/er-pi/erpi/internal/telemetry"
)

// TestStatusServer: a session started with WithStatusServer serves the
// live observability surface. The progress endpoint is probed mid-run
// (from an assertion, which executes while exploration is in flight) and
// again after End, alongside /metrics, /debug/vars, and pprof.
func TestStatusServer(t *testing.T) {
	sess, err := erpi.NewSession(newTwoReplicaCluster,
		erpi.WithStatusServer("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	srv := sess.Status()
	if srv == nil {
		t.Fatal("Status() must be non-nil after Start with WithStatusServer")
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	rec.Update("A", "add", "x")
	rec.Update("B", "add", "y")
	rec.SyncPair("A", "B")
	rec.SyncPair("B", "A")

	// Probe the progress endpoint during the run: assertions execute while
	// exploration is live, so a snapshot taken here must report running.
	probed := false
	probe := erpi.Custom{Label: "status-probe", Fn: func(*erpi.Outcome) error {
		if probed {
			return nil
		}
		probed = true
		var prog telemetry.ProgressSnapshot
		if err := json.Unmarshal([]byte(get("/progress")), &prog); err != nil {
			t.Fatalf("mid-run progress JSON: %v", err)
		}
		if !prog.Running {
			t.Fatal("mid-run progress snapshot must report running")
		}
		return nil
	}}
	res, err := sess.End(probe, erpi.Convergence{})
	if err != nil {
		t.Fatal(err)
	}
	if !probed {
		t.Fatal("mid-run probe never executed")
	}

	var prog telemetry.ProgressSnapshot
	if err := json.Unmarshal([]byte(get("/progress")), &prog); err != nil {
		t.Fatalf("progress JSON: %v", err)
	}
	if prog.Running {
		t.Fatal("post-run progress snapshot must not report running")
	}
	if prog.Explored != int64(res.Explored) {
		t.Fatalf("progress explored = %d, want %d", prog.Explored, res.Explored)
	}
	if !strings.Contains(get("/metrics"), "runner.explored") {
		t.Fatal("metrics endpoint missing runner.explored")
	}
	if !strings.Contains(get("/debug/vars"), "erpi") {
		t.Fatal("expvar endpoint missing the erpi registry")
	}
	get("/debug/pprof/cmdline")
	if !strings.Contains(get("/trace"), `"execute"`) {
		t.Fatal("trace endpoint missing execute spans")
	}
}

// TestSessionTelemetry: WithTelemetry populates a caller-owned registry
// without changing the run's results, and the registry exports a trace.
func TestSessionTelemetry(t *testing.T) {
	reg := erpi.NewTelemetry()
	sess, err := erpi.NewSession(newTwoReplicaCluster, erpi.WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	rec.Update("A", "add", "x")
	rec.Update("B", "add", "y")
	rec.SyncPair("A", "B")
	rec.SyncPair("B", "A")
	res, err := sess.End(erpi.Convergence{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Metrics() != reg {
		t.Fatal("Metrics() must return the registry given to WithTelemetry")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["runner.explored"]; got != int64(res.Explored) {
		t.Fatalf("runner.explored = %d, want %d", got, res.Explored)
	}
	if hs := snap.Histograms["stage.execute_ns"]; hs.Count != int64(res.Explored) {
		t.Fatalf("execute spans = %d, want %d", hs.Count, res.Explored)
	}
	var buf bytes.Buffer
	if err := reg.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents"`)) {
		t.Fatal("trace export missing traceEvents")
	}
}
