// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (§6), plus micro-benchmarks of ER-π's core machinery. Run
// with:
//
//	go test -bench=. -benchmem
//
// The table/figure benchmarks execute a full (or representatively scoped)
// regeneration per iteration; cmd/erpi-bench prints the actual artifacts.
package erpi_test

import (
	"fmt"
	"testing"

	"github.com/er-pi/erpi/internal/bench"
	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/runner"
)

// townReportConfig reproduces the motivating example's pruning setup
// (§2.3/§3.1: 7 events, 5040 → 19 interleavings).
func townReportLog(b *testing.B) (*event.Log, prune.Config) {
	b.Helper()
	log, err := event.NewLog([]event.Event{
		{Kind: event.Update, Replica: "A", Op: "set.add", Args: []string{"otb"}},
		{Kind: event.SyncExec, Replica: "B", From: "A", To: "B"},
		{Kind: event.Update, Replica: "B", Op: "set.add", Args: []string{"ph"}},
		{Kind: event.SyncExec, Replica: "A", From: "B", To: "A"},
		{Kind: event.Update, Replica: "B", Op: "set.remove", Args: []string{"otb"}},
		{Kind: event.SyncExec, Replica: "A", From: "B", To: "A"},
		{Kind: event.SyncSend, Replica: "A", From: "A", To: "M", Op: "transmit"},
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := prune.Config{
		Grouping:       prune.GroupSpec{Extra: [][]event.ID{{0, 1}, {2, 3}, {4, 5}}},
		TestedReplicas: []event.ReplicaID{"M"},
	}
	return log, cfg
}

// BenchmarkMotivatingExample generates and prunes the §2.3 space
// (5040 raw → 19 interleavings) per iteration.
func BenchmarkMotivatingExample(b *testing.B) {
	log, cfg := townReportLog(b)
	for i := 0; i < b.N; i++ {
		ex, err := prune.NewExplorer(log, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if got := len(interleave.Collect(ex, 0)); got != 19 {
			b.Fatalf("surviving = %d, want 19", got)
		}
	}
}

// BenchmarkTable1Reproduction reproduces every Table-1 bug under ER-π per
// iteration (the RQ1 experiment).
func BenchmarkTable1Reproduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Reproduced {
				b.Fatalf("%s not reproduced", r.Name)
			}
		}
	}
}

// BenchmarkTable2Misconceptions detects every Table-2 misconception per
// iteration (the RQ2 experiment).
func BenchmarkTable2Misconceptions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := bench.RunTable2()
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if !c.Detected {
				b.Fatalf("%s#%d not detected", c.Subject, c.Misconception)
			}
		}
	}
}

// BenchmarkFig8aInterleavings measures interleavings-to-reproduce for one
// representative bug across the three modes (the full 12-bug sweep runs in
// cmd/erpi-bench -fig8).
func BenchmarkFig8aInterleavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig8(bench.Cap, 1, "OrbitDB-3"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8bTime measures time-to-reproduce (same harness; Figure 8b
// is the duration projection of the same runs).
func BenchmarkFig8bTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig8(bench.Cap, 1, "Roshi-1")
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Duration <= 0 {
				b.Fatal("missing duration")
			}
		}
	}
}

// BenchmarkFig9Ablation measures the per-algorithm pruning contributions.
func BenchmarkFig9Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig9(4000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10SucceedOrCrash runs one succeed-or-crash round per
// iteration (ER-π succeeds, DFS and Rand exhaust the store budget).
func BenchmarkFig10SucceedOrCrash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig10(1, bench.DefaultFig10Budget)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Mode == runner.ModeERPi && !r.Succeed {
				b.Fatal("ER-π must succeed")
			}
		}
	}
}

// --- Core machinery micro-benchmarks ---

// BenchmarkInterleavingGeneration measures the raw DFS permutation
// iterator (per interleaving).
func BenchmarkInterleavingGeneration(b *testing.B) {
	log, _ := townReportLog(b)
	space := interleave.NewSpace(log)
	dfs := interleave.NewDFS(space)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := dfs.Next(); !ok {
			dfs = interleave.NewDFS(space)
		}
	}
}

// BenchmarkPrunedGeneration measures the pruned explorer (grouping +
// replica-specific filters) per yielded interleaving.
func BenchmarkPrunedGeneration(b *testing.B) {
	log, cfg := townReportLog(b)
	ex, err := prune.NewExplorer(log, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ex.Next(); !ok {
			ex, err = prune.NewExplorer(log, cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkReplayInterleaving measures executing one full interleaving
// against live replica states (checkpoint, events, fingerprints).
func BenchmarkReplayInterleaving(b *testing.B) {
	bug, _ := bugs.ByName("Roshi-1")
	scenario, err := bug.Build()
	if err != nil {
		b.Fatal(err)
	}
	il := interleave.Interleaving(bug.Trigger)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.ExecuteOnce(scenario, il); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelExploration measures the sharded exploration engine's
// throughput as the worker pool widens: the same DFS slice of Roshi-3's
// 21-event space is replayed at Workers 1/2/4/8. Each sub-benchmark
// reports interleavings/s, and the widened runs additionally report their
// speedup over the sequential baseline (meaningful only on a multi-core
// runner; on one core the pool degenerates to coordination overhead).
func BenchmarkParallelExploration(b *testing.B) {
	bug, ok := bugs.ByName("Roshi-3")
	if !ok {
		b.Fatal("Roshi-3 missing from the corpus")
	}
	scenario, err := bug.Build()
	if err != nil {
		b.Fatal(err)
	}
	const slice = 192 // DFS interleavings replayed per exploration
	throughput := map[int]float64{}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := runner.Run(scenario, runner.Config{
					Mode:             runner.ModeDFS,
					Workers:          w,
					MaxInterleavings: slice,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Explored != slice {
					b.Fatalf("explored %d, want %d", res.Explored, slice)
				}
			}
			ips := float64(b.N*slice) / b.Elapsed().Seconds()
			b.ReportMetric(ips, "interleavings/s")
			throughput[w] = ips
			if base := throughput[1]; w > 1 && base > 0 {
				b.ReportMetric(ips/base, "speedup-vs-seq")
			}
		})
	}
}

// BenchmarkPruningCount measures the exact surviving-interleaving counter
// on the motivating example's 24-permutation grouped space.
func BenchmarkPruningCount(b *testing.B) {
	log, cfg := townReportLog(b)
	for i := 0; i < b.N; i++ {
		res, err := prune.CountPruned(log, cfg, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Surviving.Int64() != 19 {
			b.Fatal("count drift")
		}
	}
}
