// Package erpi is the public API of ER-π, a middleware framework for
// integration testing of replicated data systems by exhaustive interleaving
// replay (Mondal & Tilevich, MIDDLEWARE 2025).
//
// Applications integrate a replicated data library (RDL) through the
// replica.State contract, mark the workload segment with Session.Start and
// Session.End — the paper's higher-order functions — and ER-π:
//
//  1. records the RDL calls in the segment as distributed events,
//  2. generates the exhaustive set of their interleavings,
//  3. prunes the space with four algorithms (event grouping,
//     replica-specific, event independence, failed ops),
//  4. replays every surviving interleaving against checkpointed replica
//     states, and
//  5. checks built-in and custom test assertions after each one.
//
// Quick start:
//
//	sess, _ := erpi.NewSession(newCluster,
//	    erpi.WithGroups([][]erpi.EventID{{0, 1}}),
//	    erpi.WithTestedReplicas("M"))
//	rec := sess.Start()
//	rec.Update("A", "set.add", "otb")
//	rec.Sync("A", "B")
//	// ... the workload under test ...
//	result, _ := sess.End(erpi.Convergence{})
//	for _, v := range result.Violations { fmt.Println(v) }
package erpi

import (
	"context"
	"fmt"
	"time"

	"github.com/er-pi/erpi/internal/check"
	"github.com/er-pi/erpi/internal/checkpoint"
	"github.com/er-pi/erpi/internal/constraints"
	"github.com/er-pi/erpi/internal/datalog"
	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/fault"
	"github.com/er-pi/erpi/internal/profile"
	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/telemetry"
)

// Core type aliases: the public API surfaces the internal engine types
// directly so downstream code composes with the same vocabulary as the
// paper.
type (
	// ReplicaID names a replica.
	ReplicaID = event.ReplicaID
	// EventID identifies a recorded event.
	EventID = event.ID
	// Event is one distributed event.
	Event = event.Event
	// Op is an RDL operation.
	Op = replica.Op
	// State is the contract an application's replicated state implements.
	State = replica.State
	// Cluster is a set of replicas under test.
	Cluster = replica.Cluster
	// Recorder captures a workload as events (returned by Session.Start).
	Recorder = runner.Recorder
	// Scenario is a recorded workload plus pruning config.
	Scenario = runner.Scenario
	// RunConfig tunes one exploration run.
	RunConfig = runner.Config
	// Result summarizes an exploration.
	Result = runner.Result
	// Outcome is one interleaving's observable result.
	Outcome = runner.Outcome
	// Violation is one assertion failure.
	Violation = runner.Violation
	// Assertion checks a property after each interleaving.
	Assertion = runner.Assertion
	// Mode selects the exploration strategy.
	Mode = runner.Mode
	// PruneConfig aggregates pruning inputs.
	PruneConfig = prune.Config
	// IndependenceSpec declares mutually independent events (Algorithm 3).
	IndependenceSpec = prune.IndependenceSpec
	// FailedOpsSpec declares doomed-op constraints (Algorithm 4).
	FailedOpsSpec = prune.FailedOpsSpec
	// ExecError is one quarantined interleaving: its index, schedule, and
	// the error that survived all retries.
	ExecError = runner.ExecError
	// LiveSession is one live execution attempt's gate namespace: Gate
	// mints the TurnGate for a replica, Close releases whatever the
	// session still holds.
	LiveSession = runner.LiveSession
	// LiveSessionFactory mints the fenced gate sessions for one live
	// worker.
	LiveSessionFactory = runner.SessionFactory
	// LiveGates builds the per-worker session factories for the live pool.
	LiveGates = runner.LiveGates
)

// Fault injection (chaos replay): a seeded FaultSchedule makes the engine
// crash replicas, partition links, truncate sync payloads, and take the
// lock server down at scheduled points — deterministically, so a chaos run
// reproduces byte-for-byte from its seed.
type (
	// FaultSchedule is a seeded set of faults for a run.
	FaultSchedule = fault.Schedule
	// Fault is one scheduled fault.
	Fault = fault.Fault
	// FaultKind discriminates fault types.
	FaultKind = fault.Kind
)

// Fault kinds.
const (
	// FaultCrashReplica crashes a replica at an event position, rolling it
	// back to its durable checkpoint, and keeps it down for Duration events.
	FaultCrashReplica = fault.CrashReplica
	// FaultLockOutage makes the lock server unreachable for a window.
	FaultLockOutage = fault.LockOutage
	// FaultPartition severs a replica link for a window.
	FaultPartition = fault.Partition
	// FaultTruncatePayload cuts a sync payload to KeepBytes in flight.
	FaultTruncatePayload = fault.TruncatePayload
)

// ErrReplicaDown marks an event that executed against a crashed replica.
var ErrReplicaDown = fault.ErrReplicaDown

// ErrLockServerDown marks a lock-server operation during an outage window.
var ErrLockServerDown = fault.ErrLockServerDown

// Exploration modes.
const (
	// ModeERPi replays the pruned interleaving space.
	ModeERPi = runner.ModeERPi
	// ModeDFS is the exhaustive depth-first baseline.
	ModeDFS = runner.ModeDFS
	// ModeRand is the random-shuffle baseline.
	ModeRand = runner.ModeRand
	// ModeFuzz is the coverage-guided greybox mode (the paper's §8 future
	// work): order mutations over a corpus of interleavings that produced
	// novel behaviour.
	ModeFuzz = runner.ModeFuzz
)

// Built-in test library (paper §4.4 and the misconception detectors of
// §6.2).
type (
	// Convergence requires all replicas to agree after each interleaving.
	Convergence = check.Convergence
	// StateStable requires one replica's state to be identical across
	// interleavings (misconceptions #1 and #5).
	StateStable = check.StateStable
	// ObservationEquals pins an observed value.
	ObservationEquals = check.ObservationEquals
	// ObservationStable requires an observation to be order-independent
	// (misconception #2).
	ObservationStable = check.ObservationStable
	// NoDuplicates detects duplicated collection items (misconception #3).
	NoDuplicates = check.NoDuplicates
	// NoClash detects colliding generated IDs (misconception #4).
	NoClash = check.NoClash
	// NoFailedOps forbids constraint-rejected operations.
	NoFailedOps = check.NoFailedOps
	// Custom wraps a user predicate (paper §4.5 custom assertions).
	Custom = check.Custom
)

// ErrFailedOp marks an operation rejected by a data type's constraints.
var ErrFailedOp = replica.ErrFailedOp

// Profiler measures per-exploration resource use (ops, sync bytes,
// checkpoint traffic) — the paper's §8 resource-profiling extension. Wrap
// each replica state with Profiler.Wrap and pass the profiler to
// WithProfiler.
type Profiler = profile.Profiler

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler { return profile.New() }

// WithProfiler hooks a profiler into the session's exploration.
func WithProfiler(p *Profiler) Option {
	return func(s *Session) { s.cfg.OnOutcome = p.OnOutcome }
}

// Telemetry is the engine-wide metrics registry: atomic counters, gauges,
// latency histograms, live run progress, and per-stage spans exportable as
// a Chrome trace (load it in about://tracing or https://ui.perfetto.dev).
// Attach one with WithTelemetry; it is strictly observational — exploration
// results are identical with or without it.
type Telemetry = telemetry.Registry

// NewTelemetry returns an empty telemetry registry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// StatusServer serves a run's live observability surface over HTTP: a JSON
// progress snapshot at /progress (explored/total, rate, ETA, per-worker
// state), the registry at /metrics, a Chrome trace at /trace, expvar at
// /debug/vars, and net/http/pprof under /debug/pprof/.
type StatusServer = telemetry.StatusServer

// WithTelemetry attaches a metrics registry to the session's exploration:
// the engine records counters, stage-latency histograms, spans, and live
// progress into it.
func WithTelemetry(reg *Telemetry) Option {
	return func(s *Session) { s.cfg.Telemetry = reg }
}

// WithStatusServer starts an HTTP status server on addr (host:port; port 0
// picks a free port) when the session starts, serving the session's
// telemetry registry — the one given to WithTelemetry, or a fresh registry
// otherwise. The server outlives End so the final state stays inspectable;
// close it via Session.Status().Close(). Listen errors surface from Start.
func WithStatusServer(addr string) Option {
	return func(s *Session) { s.statusAddr = addr }
}

// NewCluster builds a replica cluster from per-replica states.
func NewCluster(states map[ReplicaID]State) *Cluster {
	return replica.NewCluster(states)
}

// Run explores a scenario under a config (the scenario-level API; Session
// provides the Start/End sugar on top).
func Run(s Scenario, cfg RunConfig) (*Result, error) {
	return runner.Run(s, cfg)
}

// RunContext is Run with cancellation: when ctx is cancelled or its
// deadline passes, exploration stops promptly and returns the partial
// Result accumulated so far (Result.Interrupted is set) instead of an
// error — progress is never discarded.
func RunContext(ctx context.Context, s Scenario, cfg RunConfig) (*Result, error) {
	return runner.RunContext(ctx, s, cfg)
}

// Option configures a Session.
type Option func(*Session)

// WithMode selects the exploration strategy (default ModeERPi).
func WithMode(m Mode) Option { return func(s *Session) { s.cfg.Mode = m } }

// WithMaxInterleavings caps exploration (default 10000, the paper's
// threshold).
func WithMaxInterleavings(n int) Option {
	return func(s *Session) { s.cfg.MaxInterleavings = n }
}

// WithSeed seeds ModeRand.
func WithSeed(seed int64) Option { return func(s *Session) { s.cfg.Seed = seed } }

// WithFuzzGeneration fixes how many mutated children ModeFuzz synthesizes
// per generation — the unit of corpus evolution and the pool's fuzz
// quiesce barrier. Larger generations keep more workers busy between
// barriers; smaller ones mutate from a fresher corpus. Zero or negative
// restores the default adaptive sizing, which reacts to the corpus-novelty
// rate. Either way the corpus trajectory depends only on the seed and the
// observed behaviour signatures, never on worker count.
func WithFuzzGeneration(n int) Option {
	return func(s *Session) { s.cfg.FuzzGenerationSize = n }
}

// WithWorkers sets how many interleavings replay concurrently, each
// against its own cluster from the session's factory (which must then be
// safe for concurrent calls). Zero or negative means one worker per
// available CPU; 1 forces the sequential engine. Exploration results are
// identical at every worker count — only wall-clock time changes.
func WithWorkers(n int) Option {
	return func(s *Session) { s.cfg.Workers = n }
}

// WithLiveWorkers routes exploration through the live replay path
// (ReplayLive semantics: one goroutine per replica, ordered by turn
// gates) with n interleavings in flight concurrently, each under its own
// fenced gate session. Results are identical to the checkpointed engine
// and to a sequential live loop at every worker count; only wall-clock
// time changes. Combine with WithLiveGates for lock-server-ordered
// sessions; without it each session gets an in-process gate.
func WithLiveWorkers(n int) Option {
	return func(s *Session) { s.cfg.LiveWorkers = n }
}

// WithLiveGates supplies the per-worker gate-session factories used by
// WithLiveWorkers — e.g. one proxy.DistPool per worker for
// lock-server-ordered replay with epoch-fenced sess/<worker>/<epoch> key
// namespaces.
func WithLiveGates(gates LiveGates) Option {
	return func(s *Session) { s.cfg.LiveGates = gates }
}

// WithPrefixCache enables incremental replay: each worker keeps a
// private bounded trie of mid-run cluster snapshots keyed by executed
// event-prefix, restores the deepest cached prefix of every interleaving,
// and replays only the suffix. bytes bounds the cached snapshot memory
// per worker. Strictly an accelerator — results are byte-identical with
// the cache on or off, and fault-carrying interleavings always replay
// from a clean genesis checkpoint. Non-positive bytes disables the cache.
func WithPrefixCache(bytes int64) Option {
	return func(s *Session) { s.cfg.PrefixCacheBytes = bytes }
}

// WithSubsumption enables DPOR-style state subsumption: interleavings
// whose execution frontier reaches an already-visited (state-hash,
// remaining-event-multiset) pair via a lexicographically smaller prefix
// are skipped — their outcomes are provably ones executed interleavings
// produce, so the deduplicated outcome-signature set is unchanged while
// far fewer interleavings execute. bytes bounds the shared
// visited-frontier table. Skipped interleavings still count toward
// MaxInterleavings and the journal, and are reported in Result.Subsumed.
// Honored by the lexicographic modes (ER-π pruned and DFS) only;
// fault-carrying interleavings always execute. Non-positive bytes
// disables subsumption.
func WithSubsumption(bytes int64) Option {
	return func(s *Session) { s.cfg.SubsumptionTable = bytes }
}

// WithSnapshotHashing selects the snapshot-hashing strategy (DESIGN.md
// §4.15). Incremental (the default) re-serializes and re-hashes only the
// replicas dirtied since the last snapshot, serving the rest from
// per-replica version-keyed caches; incremental=false forces a full
// re-serialization and re-hash of every replica at every snapshot. The
// digest DEFINITION is identical either way — full mode is a bisection
// escape hatch, not a different hash — so context hashes, outcome
// signatures, and determinism pins are byte-identical in both modes.
func WithSnapshotHashing(incremental bool) Option {
	return func(s *Session) { s.cfg.FullSnapshotHashing = !incremental }
}

// WithPrefixDeltas toggles delta accounting in the prefix cache (default
// on): snapshots share the immutable state buffers of replicas that did
// not change between neighboring prefixes, and each distinct buffer is
// charged against the byte budget once, so the same budget holds far
// more prefixes. Off, every snapshot is charged its full logical size.
// Cache contents and restore results are identical either way — only
// byte accounting (and therefore eviction pressure) changes.
func WithPrefixDeltas(on bool) Option {
	return func(s *Session) { s.cfg.NoPrefixDeltas = !on }
}

// WithForensics captures a self-contained forensic bundle for each
// violating interleaving into dir (created on first violation): the event
// schedule, fault plan, per-step canonical state timeline, a fault-free
// baseline for divergence alignment, and the run's telemetry span slice.
// Render a bundle with `erpi explain <bundle.json>`. Capture re-executes
// the violating interleaving after the fact — the exploration hot path is
// untouched, so results and determinism pins are identical with or
// without it. At most MaxForensicBundles (default 8) are written per run;
// paths appear in Result.Bundles.
func WithForensics(dir string) Option {
	return func(s *Session) { s.cfg.ForensicDir = dir }
}

// WithStopOnViolation ends exploration at the first violation.
func WithStopOnViolation() Option {
	return func(s *Session) { s.cfg.StopOnViolation = true }
}

// WithTestedReplicas enables replica-specific pruning for the given
// replicas — the paper's "ER-π allows specifying the replicas' id as a
// parameter of higher-order functions".
func WithTestedReplicas(ids ...ReplicaID) Option {
	return func(s *Session) {
		s.pruning.TestedReplicas = append(s.pruning.TestedReplicas, ids...)
	}
}

// WithGroups declares developer-specified event groups (Algorithm 1).
func WithGroups(groups [][]EventID) Option {
	return func(s *Session) {
		s.pruning.Grouping.Extra = append(s.pruning.Grouping.Extra, groups...)
	}
}

// WithIndependentEvents declares a mutually independent event set
// (Algorithm 3).
func WithIndependentEvents(spec IndependenceSpec) Option {
	return func(s *Session) {
		s.pruning.IndependentSets = append(s.pruning.IndependentSets, spec)
	}
}

// WithFailedOps declares a failed-ops constraint (Algorithm 4).
func WithFailedOps(spec FailedOpsSpec) Option {
	return func(s *Session) {
		s.pruning.FailedOps = append(s.pruning.FailedOps, spec)
	}
}

// WithFaults injects a seeded fault schedule into the replay: replica
// crashes, link partitions, payload truncations, and lock-server outages
// fire at their scheduled (interleaving, event) coordinates. Interleavings
// that still fail after retries are quarantined in Result.Quarantined
// while exploration continues — a fault never aborts the run.
func WithFaults(schedule FaultSchedule) Option {
	return func(s *Session) { s.cfg.Faults = &schedule }
}

// WithDeadline bounds the whole exploration: when it expires the run
// returns promptly with the partial Result (Result.Interrupted set) rather
// than hanging or discarding progress.
func WithDeadline(d time.Duration) Option {
	return func(s *Session) { s.cfg.Deadline = d }
}

// WithRetries sets how many times a failing interleaving is retried (with
// exponential backoff) before being quarantined; negative disables
// retries.
func WithRetries(n int) Option {
	return func(s *Session) { s.cfg.MaxRetries = n }
}

// WithStore persists explored interleavings in a deductive store.
func WithStore(store *datalog.Store) Option {
	return func(s *Session) { s.cfg.Store = store }
}

// WithConstraintsDir polls a directory for JSON constraint files during
// the run, re-pruning when new constraints appear (paper §5.2).
func WithConstraintsDir(dir string) Option {
	return func(s *Session) {
		poller := constraints.NewPoller(dir)
		s.cfg.ConstraintPoll = poller.Poll
	}
}

// WithJournal persists the recorded log and every explored interleaving
// under dir, so an interrupted End resumes where it left off (paper §4.2).
// The directory is created on first use; errors surface from End.
func WithJournal(dir string) Option {
	return func(s *Session) { s.journalDir = dir }
}

// ReplayLive re-executes one interleaving of a scenario with one goroutine
// per replica, ordered through the given turn-gate factory — the
// deployment-shaped replay path of §4.3 (see the proxy and lockserver
// packages for in-process and distributed gates). Most callers want Run or
// Session.End instead; ReplayLive exists for debugging a single violating
// interleaving under real concurrency.
var ReplayLive = runner.ExecuteLive

// Session is the Start/End workflow of the paper's §4.1: a recorded
// segment boundary plus the replay configuration.
type Session struct {
	name       string
	newCluster func() (*Cluster, error)
	pruning    PruneConfig
	cfg        RunConfig
	journalDir string
	rec        *Recorder
	statusAddr string
	status     *StatusServer
}

// NewSession prepares a session over a cluster factory. The factory is
// called once for recording and once more for replay, so it must produce
// pristine states each time.
func NewSession(newCluster func() (*Cluster, error), opts ...Option) (*Session, error) {
	if newCluster == nil {
		return nil, fmt.Errorf("erpi: nil cluster factory")
	}
	s := &Session{name: "session", newCluster: newCluster}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// Start begins recording and returns the recorder the workload drives —
// the paper's ER-π.Start().
func (s *Session) Start() (*Recorder, error) {
	if s.rec != nil {
		return nil, fmt.Errorf("erpi: session already started")
	}
	if s.statusAddr != "" && s.status == nil {
		if s.cfg.Telemetry == nil {
			s.cfg.Telemetry = telemetry.New()
		}
		srv, err := telemetry.NewStatusServer(s.statusAddr, s.cfg.Telemetry)
		if err != nil {
			return nil, fmt.Errorf("erpi: %w", err)
		}
		s.status = srv
	}
	cluster, err := s.newCluster()
	if err != nil {
		return nil, fmt.Errorf("erpi: recording cluster: %w", err)
	}
	s.rec = runner.NewRecorder(cluster)
	return s.rec, nil
}

// Status returns the session's status server (nil unless WithStatusServer
// was used and Start has run). The server keeps serving after End; callers
// close it when done inspecting.
func (s *Session) Status() *StatusServer { return s.status }

// Metrics returns the session's telemetry registry: the one given to
// WithTelemetry, or the registry WithStatusServer created at Start (nil if
// neither applies).
func (s *Session) Metrics() *Telemetry { return s.cfg.Telemetry }

// End stops recording, generates and prunes the interleavings, replays
// them, and checks the assertions — the paper's ER-π.End([tests...]).
func (s *Session) End(assertions ...Assertion) (*Result, error) {
	if s.rec == nil {
		return nil, fmt.Errorf("erpi: session not started")
	}
	log, err := s.rec.Log()
	s.rec = nil
	if err != nil {
		return nil, fmt.Errorf("erpi: recording failed: %w", err)
	}
	cfg := s.cfg
	cfg.Assertions = append(cfg.Assertions, assertions...)
	if s.journalDir != "" {
		dir, err := checkpoint.Open(s.journalDir)
		if err != nil {
			return nil, fmt.Errorf("erpi: journal: %w", err)
		}
		cfg.Journal = dir
		// The journal buffers appends; close it (flushing the tail) once
		// the run is over, whatever the outcome.
		defer dir.Close()
	}
	return runner.Run(Scenario{
		Name:       s.name,
		Log:        log,
		NewCluster: s.newCluster,
		Pruning:    s.pruning,
	}, cfg)
}
