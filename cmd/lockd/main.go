// Command lockd runs ER-π's distributed lock server: a Redis-compatible
// (RESP subset) key-value store with TTLs, the coordination point that
// enforces event order during distributed replay (paper §4.3).
//
//	lockd -addr 127.0.0.1:6380
//
// Supported commands: PING, SET key value [NX] [PX ms], GET, DEL, INCR,
// CAD key expect (atomic compare-and-delete, the unlock primitive).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/er-pi/erpi/internal/lockserver"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:6380", "listen address")
	flag.Parse()

	srv := lockserver.NewServer(lockserver.NewStore())
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockd:", err)
		return 1
	}
	fmt.Println("lockd listening on", bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("lockd shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "lockd:", err)
		return 1
	}
	return 0
}
