// Command erpi-bench regenerates every table and figure of the ER-π
// paper's evaluation (§6):
//
//	erpi-bench -all           # everything (several minutes)
//	erpi-bench -table1        # Table 1: bug benchmarks
//	erpi-bench -table2        # Table 2: misconception detection
//	erpi-bench -fig8          # Figure 8a+8b: interleavings & time per bug/mode
//	erpi-bench -fig9          # Figure 9: per-algorithm pruning contribution
//	erpi-bench -fig10         # Figure 10: succeed-or-crash micro-benchmark
//	erpi-bench -pool          # pool throughput sweep -> BENCH_pool.json
//	erpi-bench -fuzz          # generation-batched fuzz sweep -> BENCH_fuzz.json
//	erpi-bench -prefix        # incremental-replay sweep -> BENCH_prefix.json
//	erpi-bench -subsume       # state-subsumption sweep -> BENCH_subsume.json
//	erpi-bench -hash          # incremental-hashing micro+parity -> BENCH_hash.json
//	erpi-bench -live          # live-replay session sweep -> BENCH_live.json
//	erpi-bench -dist          # distributed-coordinator sweep -> BENCH_dist.json
//	erpi-bench -obs           # telemetry/federation overhead -> BENCH_obs.json
//
// Any mode accepts -cpuprofile/-memprofile to capture pprof profiles of
// the whole invocation.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/er-pi/erpi/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		all     = flag.Bool("all", false, "regenerate every table and figure")
		table1  = flag.Bool("table1", false, "Table 1: bug benchmarks")
		table2  = flag.Bool("table2", false, "Table 2: misconception detection")
		fig8    = flag.Bool("fig8", false, "Figure 8a/8b: reproduction cost per bug and mode")
		fig9    = flag.Bool("fig9", false, "Figure 9: pruning ablation")
		fig10   = flag.Bool("fig10", false, "Figure 10: succeed-or-crash")
		fuzzx   = flag.Bool("fuzzext", false, "extension: fuzzing vs Rand on the Rand-hard bugs")
		cap     = flag.Int("cap", bench.Cap, "exploration cap (Figure 8)")
		seed    = flag.Int64("seed", 1, "seed for the Rand baseline and sampling")
		runs    = flag.Int("runs", 5, "runs per mode (Figure 10)")
		budget  = flag.Int("budget", bench.DefaultFig10Budget, "store fact budget (Figure 10)")
		sample  = flag.Int("sample", 20000, "sampling size for Figure 9 estimates")
		pool    = flag.Bool("pool", false, "pool throughput sweep over worker counts")
		poolN   = flag.Int("pool-slice", bench.DefaultPoolSlice, "interleavings per pool run")
		poolOut = flag.String("pool-out", "BENCH_pool.json", "machine-readable pool report path")
		fuzz    = flag.Bool("fuzz", false, "generation-batched fuzz sweep over worker counts")
		fuzzN   = flag.Int("fuzz-slice", bench.DefaultFuzzSlice, "interleavings per fuzz run")
		fuzzOut = flag.String("fuzz-out", "BENCH_fuzz.json", "machine-readable fuzz report path")
		prefix  = flag.Bool("prefix", false, "incremental-replay sweep over prefix-cache budgets")
		prefN   = flag.Int("prefix-slice", bench.DefaultPrefixSlice, "interleavings per prefix run")
		prefOut = flag.String("prefix-out", "BENCH_prefix.json", "machine-readable prefix report path")
		subsume = flag.Bool("subsume", false, "state-subsumption sweep over table budgets")
		subN    = flag.Int("subsume-slice", bench.DefaultSubsumeSlice, "interleavings per subsumption run")
		subOut  = flag.String("subsume-out", "BENCH_subsume.json", "machine-readable subsumption report path")
		hash    = flag.Bool("hash", false, "incremental snapshot-hashing micro benchmark and parity pins")
		hashN   = flag.Int("hash-slice", bench.DefaultHashSlice, "interleavings per hash-parity engine run")
		hashOut = flag.String("hash-out", "BENCH_hash.json", "machine-readable hash report path")
		live    = flag.Bool("live", false, "live-replay sweep over concurrent session counts")
		liveN   = flag.Int("live-slice", bench.DefaultLiveSlice, "interleavings per live run")
		liveOut = flag.String("live-out", "BENCH_live.json", "machine-readable live report path")
		dist    = flag.Bool("dist", false, "distributed-coordinator sweep over worker counts")
		distN   = flag.Int("dist-slice", bench.DefaultDistSlice, "interleavings per distributed run")
		distOut = flag.String("dist-out", "BENCH_dist.json", "machine-readable distributed report path")
		obs     = flag.Bool("obs", false, "telemetry and federation overhead measurement")
		obsN    = flag.Int("obs-slice", bench.DefaultObsSlice, "interleavings per observability run")
		obsOut  = flag.String("obs-out", "BENCH_obs.json", "machine-readable observability report path")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the whole invocation to this path")
		memProf = flag.String("memprofile", "", "write a heap profile at exit to this path")
	)
	flag.Parse()
	if !*all && !*table1 && !*table2 && !*fig8 && !*fig9 && !*fig10 && !*fuzzx && !*pool && !*fuzz && !*prefix && !*subsume && !*hash && !*live && !*dist && !*obs {
		flag.Usage()
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "erpi-bench:", err)
		return 1
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "erpi-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "erpi-bench:", err)
			}
		}()
	}
	if *all || *table1 {
		rows, err := bench.RunTable1()
		if err != nil {
			return fail(err)
		}
		if err := bench.WriteTable1(os.Stdout, rows); err != nil {
			return fail(err)
		}
		fmt.Println()
	}
	if *all || *table2 {
		cells, err := bench.RunTable2()
		if err != nil {
			return fail(err)
		}
		if err := bench.WriteTable2(os.Stdout, cells); err != nil {
			return fail(err)
		}
		fmt.Println()
	}
	if *all || *fig8 {
		res, err := bench.RunFig8(*cap, *seed, flag.Args()...)
		if err != nil {
			return fail(err)
		}
		fmt.Println(res.Render())
	}
	if *all || *fig9 {
		rows, err := bench.RunFig9(*sample, *seed)
		if err != nil {
			return fail(err)
		}
		if err := bench.WriteFig9(os.Stdout, rows); err != nil {
			return fail(err)
		}
		fmt.Println()
	}
	if *all || *fig10 {
		rows, err := bench.RunFig10(*runs, *budget)
		if err != nil {
			return fail(err)
		}
		if err := bench.WriteFig10(os.Stdout, rows); err != nil {
			return fail(err)
		}
		fmt.Println()
	}
	if *all || *pool {
		report, err := bench.RunPool(*poolN, nil)
		if err != nil {
			return fail(err)
		}
		if err := report.Render(os.Stdout); err != nil {
			return fail(err)
		}
		if err := report.WritePoolJSON(*poolOut); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %s\n\n", *poolOut)
	}
	if *all || *fuzz {
		report, err := bench.RunFuzz(*fuzzN, nil)
		if err != nil {
			return fail(err)
		}
		if err := report.Render(os.Stdout); err != nil {
			return fail(err)
		}
		if err := report.WriteFuzzJSON(*fuzzOut); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %s\n\n", *fuzzOut)
		if !report.TrajectoryMatch {
			return fail(fmt.Errorf("fuzz corpus trajectory diverged across worker counts"))
		}
	}
	if *all || *prefix {
		report, err := bench.RunPrefix(*prefN, nil)
		if err != nil {
			return fail(err)
		}
		if err := report.Render(os.Stdout); err != nil {
			return fail(err)
		}
		if err := report.WritePrefixJSON(*prefOut); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %s\n\n", *prefOut)
	}
	if *all || *subsume {
		report, err := bench.RunSubsume(*subN, nil)
		if err != nil {
			return fail(err)
		}
		if err := report.Render(os.Stdout); err != nil {
			return fail(err)
		}
		if err := report.WriteSubsumeJSON(*subOut); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %s\n\n", *subOut)
	}
	if *all || *hash {
		report, err := bench.RunHash(*hashN)
		if err != nil {
			return fail(err)
		}
		if err := report.Render(os.Stdout); err != nil {
			return fail(err)
		}
		if err := report.WriteHashJSON(*hashOut); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %s\n\n", *hashOut)
	}
	if *all || *live {
		report, err := bench.RunLive(*liveN, nil)
		if err != nil {
			return fail(err)
		}
		if err := report.Render(os.Stdout); err != nil {
			return fail(err)
		}
		if err := report.WriteLiveJSON(*liveOut); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %s\n\n", *liveOut)
	}
	if *all || *dist {
		report, err := bench.RunDist(*distN, nil)
		if err != nil {
			return fail(err)
		}
		if err := report.Render(os.Stdout); err != nil {
			return fail(err)
		}
		if err := report.WriteDistJSON(*distOut); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %s\n\n", *distOut)
	}
	if *all || *obs {
		report, err := bench.RunObs(*obsN)
		if err != nil {
			return fail(err)
		}
		if err := report.Render(os.Stdout); err != nil {
			return fail(err)
		}
		if err := report.WriteObsJSON(*obsOut); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %s\n\n", *obsOut)
	}
	if *all || *fuzzx {
		rows, err := bench.RunFuzzExt(3, *cap)
		if err != nil {
			return fail(err)
		}
		if err := bench.WriteFuzzExt(os.Stdout, rows); err != nil {
			return fail(err)
		}
		fmt.Println()
	}
	return 0
}
