// Command erpi explores one benchmark workload with a chosen strategy:
//
//	erpi -list                            # list bug benchmarks and misconception scenarios
//	erpi -bug Roshi-1                     # reproduce a Table-1 bug with ER-π pruning
//	erpi -bug OrbitDB-5 -mode dfs         # the DFS baseline
//	erpi -bug Yorkie-2 -mode rand -seed 7 # the Rand baseline
//	erpi -miscon "CRDTs#4"                # detect a misconception scenario
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/checkpoint"
	"github.com/er-pi/erpi/internal/miscon"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list       = flag.Bool("list", false, "list available benchmarks")
		bugName    = flag.String("bug", "", "Table-1 bug benchmark to reproduce")
		misconName = flag.String("miscon", "", "misconception scenario to detect (e.g. CRDTs#4)")
		mode       = flag.String("mode", "erpi", "exploration mode: erpi, dfs, rand")
		seed       = flag.Int64("seed", 1, "seed for rand mode")
		capN       = flag.Int("cap", runner.DefaultMaxInterleavings, "max interleavings to explore")
		verbose    = flag.Bool("v", false, "print every violation, not just the first")
		session    = flag.String("session", "", "journal directory: persist progress and resume interrupted runs")
		workers    = flag.Int("workers", 1, "concurrent executors (0 = one per CPU); results are identical at every count")
		liveN      = flag.Int("live-workers", 0, "route exploration through live replay (goroutine-per-replica, turn-gated) with this many concurrent sessions; 0 keeps the checkpointed engine")
		statusAddr = flag.String("status-addr", "", "serve live progress, metrics, pprof, and a Chrome trace on this host:port")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON file after the run (open in about://tracing)")
	)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "erpi:", err)
		return 1
	}

	if *list {
		fmt.Println("Bug benchmarks (Table 1):")
		for _, b := range bugs.All() {
			fmt.Printf("  %-12s issue #%-5d %2d events  %s (%s)\n", b.Name, b.Issue, b.Events, b.Status, b.Reason)
		}
		fmt.Println("Misconception scenarios (Table 2):")
		for _, sc := range miscon.All() {
			fmt.Printf("  %-12s %s\n", sc.Name(), sc.Seeding)
		}
		return 0
	}

	var (
		scenario runner.Scenario
		asserts  []runner.Assertion
		err      error
		label    string
	)
	switch {
	case *bugName != "":
		b, ok := bugs.ByName(*bugName)
		if !ok {
			return fail(fmt.Errorf("unknown bug %q (try -list)", *bugName))
		}
		label = b.Name
		scenario, err = b.Build()
		if err != nil {
			return fail(err)
		}
		asserts, err = b.NewAssertions()
		if err != nil {
			return fail(err)
		}
	case *misconName != "":
		var found *miscon.Scenario
		for _, sc := range miscon.All() {
			if sc.Name() == *misconName {
				found = sc
				break
			}
		}
		if found == nil {
			return fail(fmt.Errorf("unknown misconception scenario %q (try -list)", *misconName))
		}
		label = found.Name()
		scenario, err = found.Build()
		if err != nil {
			return fail(err)
		}
		asserts = found.NewAssertions()
	default:
		flag.Usage()
		return 2
	}

	cfg := runner.Config{
		Mode:             runner.Mode(*mode),
		Seed:             *seed,
		MaxInterleavings: *capN,
		Workers:          *workers,
		LiveWorkers:      *liveN,
		StopOnViolation:  !*verbose,
		Assertions:       asserts,
	}
	if *session != "" {
		dir, err := checkpoint.Open(*session)
		if err != nil {
			return fail(err)
		}
		cfg.Journal = dir
	}
	if *statusAddr != "" || *traceOut != "" {
		cfg.Telemetry = telemetry.New()
	}
	if *statusAddr != "" {
		srv, err := telemetry.NewStatusServer(*statusAddr, cfg.Telemetry)
		if err != nil {
			return fail(err)
		}
		defer srv.Close()
		fmt.Printf("status: http://%s/progress (metrics, trace, debug/vars, debug/pprof)\n", srv.Addr())
	}
	res, err := runner.Run(scenario, cfg)
	if err != nil {
		return fail(err)
	}

	fmt.Printf("%s: %d events, mode=%s, explored %d interleavings in %v\n",
		label, scenario.Log.Len(), res.Mode, res.Explored, res.Duration.Round(1000))
	if res.Resumed > 0 {
		fmt.Printf("resumed past %d journaled interleavings\n", res.Resumed)
	}
	if len(res.Quarantined) > 0 {
		fmt.Printf("quarantined %d interleavings (kept failing after retries)\n", len(res.Quarantined))
		if *verbose {
			for _, q := range res.Quarantined {
				fmt.Println(" ", q)
			}
		}
	}
	if res.DedupSaturated {
		fmt.Println("warning: dedup set saturated; some interleavings may have run twice")
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, cfg.Telemetry); err != nil {
			return fail(err)
		}
		fmt.Printf("trace: %s\n", *traceOut)
	}
	if cfg.Telemetry != nil {
		fmt.Print(cfg.Telemetry.Snapshot().Summary())
	}
	if res.FirstViolation > 0 {
		fmt.Printf("REPRODUCED at interleaving #%d\n", res.FirstViolation)
		if *verbose {
			for _, v := range res.Violations {
				fmt.Println(" ", v)
			}
		} else {
			fmt.Println(" ", res.Violations[0])
		}
		return 0
	}
	fmt.Printf("not reproduced within %d interleavings (exhausted=%v)\n", *capN, res.Exhausted)
	return 3
}

// writeTrace dumps the registry's retained spans as Chrome trace_event
// JSON at path.
func writeTrace(path string, reg *telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteTrace(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
