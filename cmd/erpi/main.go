// Command erpi explores one benchmark workload with a chosen strategy:
//
//	erpi -list                            # list bug benchmarks and misconception scenarios
//	erpi -bug Roshi-1                     # reproduce a Table-1 bug with ER-π pruning
//	erpi -bug OrbitDB-5 -mode dfs         # the DFS baseline
//	erpi -bug Yorkie-2 -mode rand -seed 7 # the Rand baseline
//	erpi -bug Roshi-3 -mode fuzz -workers 8 # generation-batched feedback fuzzing
//	erpi -miscon "CRDTs#4"                # detect a misconception scenario
//	erpi explain forensic-000042.json     # narrate a violation forensic bundle
//	erpi promcheck metrics.txt            # validate Prometheus text exposition
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/checkpoint"
	"github.com/er-pi/erpi/internal/coordinator"
	"github.com/er-pi/erpi/internal/forensics"
	"github.com/er-pi/erpi/internal/logx"
	"github.com/er-pi/erpi/internal/miscon"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/telemetry"
)

func main() {
	// Subcommands dispatch before flag parsing so their operands never
	// collide with exploration flags.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "explain":
			os.Exit(runExplain(os.Args[2:]))
		case "promcheck":
			os.Exit(runPromcheck(os.Args[2:]))
		}
	}
	os.Exit(run())
}

// runExplain renders one or more forensic bundles as causal narratives.
func runExplain(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: erpi explain <bundle.json> [...]")
		return 2
	}
	for _, path := range paths {
		b, err := forensics.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "erpi explain:", err)
			return 1
		}
		if err := forensics.Explain(os.Stdout, b); err != nil {
			fmt.Fprintln(os.Stderr, "erpi explain:", err)
			return 1
		}
	}
	return 0
}

// runPromcheck validates Prometheus text exposition from a file (or stdin
// with no argument) — the CI stand-in for promtool check metrics.
func runPromcheck(args []string) int {
	in := io.Reader(os.Stdin)
	src := "stdin"
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "erpi promcheck:", err)
			return 1
		}
		defer f.Close()
		in, src = f, args[0]
	}
	if err := telemetry.ValidatePrometheus(in); err != nil {
		fmt.Fprintf(os.Stderr, "erpi promcheck: %s: %v\n", src, err)
		return 1
	}
	fmt.Printf("%s: valid Prometheus text exposition\n", src)
	return 0
}

func run() int {
	var (
		list       = flag.Bool("list", false, "list available benchmarks")
		bugName    = flag.String("bug", "", "Table-1 bug benchmark to reproduce")
		misconName = flag.String("miscon", "", "misconception scenario to detect (e.g. CRDTs#4)")
		mode       = flag.String("mode", "erpi", "exploration mode: erpi, dfs, rand, fuzz")
		seed       = flag.Int64("seed", 1, "seed for rand and fuzz modes")
		fuzzGen    = flag.Int("fuzz-gen", 0, "fuzz mode: children per generation (0 = adaptive from the corpus novelty rate)")
		capN       = flag.Int("cap", runner.DefaultMaxInterleavings, "max interleavings to explore")
		verbose    = flag.Bool("v", false, "print every violation, not just the first")
		session    = flag.String("session", "", "journal directory: persist progress and resume interrupted runs")
		workers    = flag.Int("workers", 1, "concurrent executors (0 = one per CPU); results are identical at every count")
		liveN      = flag.Int("live-workers", 0, "route exploration through live replay (goroutine-per-replica, turn-gated) with this many concurrent sessions; 0 keeps the checkpointed engine")
		statusAddr = flag.String("status-addr", "", "serve live progress, metrics, pprof, and a Chrome trace on this host:port")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON file after the run (open in about://tracing)")
		coordURL   = flag.String("coordinator", "", "submit to a running erpi-coordinator's status URL (e.g. http://host:8080) and watch, instead of exploring locally")
		forensicD  = flag.String("forensics", "erpi-forensics", "capture a forensic bundle per violating interleaving into this directory (created only on violation; empty disables)")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "erpi:", err)
		return 1
	}
	if err := logx.SetLevel(*logLevel); err != nil {
		return fail(err)
	}

	if *coordURL != "" && !*list {
		return submitRemote(*coordURL, coordinator.JobSpec{
			Bug:                *bugName,
			Miscon:             *misconName,
			Mode:               *mode,
			Seed:               *seed,
			FuzzGenerationSize: *fuzzGen,
			MaxInterleavings:   *capN,
			StopOnViolation:    !*verbose,
		}, fail)
	}

	if *list {
		fmt.Println("Bug benchmarks (Table 1):")
		for _, b := range bugs.All() {
			fmt.Printf("  %-12s issue #%-5d %2d events  %s (%s)\n", b.Name, b.Issue, b.Events, b.Status, b.Reason)
		}
		fmt.Println("Misconception scenarios (Table 2):")
		for _, sc := range miscon.All() {
			fmt.Printf("  %-12s %s\n", sc.Name(), sc.Seeding)
		}
		return 0
	}

	var (
		scenario runner.Scenario
		asserts  []runner.Assertion
		err      error
		label    string
	)
	switch {
	case *bugName != "":
		b, ok := bugs.ByName(*bugName)
		if !ok {
			return fail(fmt.Errorf("unknown bug %q (try -list)", *bugName))
		}
		label = b.Name
		scenario, err = b.Build()
		if err != nil {
			return fail(err)
		}
		asserts, err = b.NewAssertions()
		if err != nil {
			return fail(err)
		}
	case *misconName != "":
		var found *miscon.Scenario
		for _, sc := range miscon.All() {
			if sc.Name() == *misconName {
				found = sc
				break
			}
		}
		if found == nil {
			return fail(fmt.Errorf("unknown misconception scenario %q (try -list)", *misconName))
		}
		label = found.Name()
		scenario, err = found.Build()
		if err != nil {
			return fail(err)
		}
		asserts = found.NewAssertions()
	default:
		flag.Usage()
		return 2
	}

	cfg := runner.Config{
		Mode:               runner.Mode(*mode),
		Seed:               *seed,
		FuzzGenerationSize: *fuzzGen,
		MaxInterleavings:   *capN,
		Workers:            *workers,
		LiveWorkers:        *liveN,
		StopOnViolation:    !*verbose,
		Assertions:         asserts,
		ForensicDir:        *forensicD,
	}
	if *session != "" {
		dir, err := checkpoint.Open(*session)
		if err != nil {
			return fail(err)
		}
		cfg.Journal = dir
	}
	if *statusAddr != "" || *traceOut != "" {
		cfg.Telemetry = telemetry.New()
	}
	if *statusAddr != "" {
		srv, err := telemetry.NewStatusServer(*statusAddr, cfg.Telemetry)
		if err != nil {
			return fail(err)
		}
		defer srv.Close()
		fmt.Printf("status: http://%s/progress (metrics, trace, debug/vars, debug/pprof)\n", srv.Addr())
	}
	res, err := runner.Run(scenario, cfg)
	if err != nil {
		return fail(err)
	}

	fmt.Printf("%s: %d events, mode=%s, explored %d interleavings in %v\n",
		label, scenario.Log.Len(), res.Mode, res.Explored, res.Duration.Round(1000))
	if res.Resumed > 0 {
		fmt.Printf("resumed past %d journaled interleavings\n", res.Resumed)
	}
	if len(res.Quarantined) > 0 {
		fmt.Printf("quarantined %d interleavings (kept failing after retries)\n", len(res.Quarantined))
		if *verbose {
			for _, q := range res.Quarantined {
				fmt.Println(" ", q)
			}
		}
	}
	if res.DedupSaturated {
		fmt.Println("warning: dedup set saturated; some interleavings may have run twice")
	}
	if res.Fuzz != nil {
		fmt.Printf("fuzz: %d generations, corpus %d, coverage %d signatures, trajectory %.12s\n",
			res.Fuzz.Generations, res.Fuzz.CorpusSize, res.Fuzz.Coverage, res.Fuzz.TrajectoryDigest)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, cfg.Telemetry); err != nil {
			return fail(err)
		}
		fmt.Printf("trace: %s\n", *traceOut)
	}
	if cfg.Telemetry != nil {
		fmt.Print(cfg.Telemetry.Snapshot().Summary())
	}
	if res.FirstViolation > 0 {
		fmt.Printf("REPRODUCED at interleaving #%d\n", res.FirstViolation)
		if *verbose {
			for _, v := range res.Violations {
				fmt.Println(" ", v)
			}
		} else {
			fmt.Println(" ", res.Violations[0])
		}
		for _, path := range res.Bundles {
			fmt.Printf("forensics: %s (run `erpi explain %s`)\n", path, path)
		}
		return 0
	}
	fmt.Printf("not reproduced within %d interleavings (exhausted=%v)\n", *capN, res.Exhausted)
	return 3
}

// submitRemote posts the spec to a coordinator's jobs API and watches the
// job to completion, mapping its terminal status onto erpi's usual exit
// codes (0 = reproduced / detected, 3 = not reproduced).
func submitRemote(api string, spec coordinator.JobSpec, fail func(error) int) int {
	body, _ := json.Marshal(spec)
	resp, err := http.Post(api+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return fail(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fail(fmt.Errorf("coordinator: %s: %s", resp.Status, bytes.TrimSpace(data)))
	}
	var st coordinator.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return fail(err)
	}
	fmt.Printf("submitted %s (%s) to %s\n", st.ID, st.Label, api)
	for st.State == coordinator.StateRunning {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%s?wait=30", api, st.ID))
		if err != nil {
			return fail(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fail(fmt.Errorf("coordinator: %s: %s", resp.Status, bytes.TrimSpace(data)))
		}
		if err := json.Unmarshal(data, &st); err != nil {
			return fail(err)
		}
		fmt.Printf("%s: %s, explored %d (leased %d, pending %d)\n",
			st.ID, st.State, st.Explored, st.RangesLeased, st.RangesPending)
	}
	if st.Error != "" {
		return fail(fmt.Errorf("coordinator: job %s %s: %s", st.ID, st.State, st.Error))
	}
	fmt.Printf("%s: %s, explored %d interleavings, digest %s\n", st.ID, st.State, st.Explored, st.Digest)
	if st.FirstViolation > 0 {
		fmt.Printf("REPRODUCED at interleaving #%d\n", st.FirstViolation)
		for _, v := range st.Violations {
			fmt.Printf("  #%d [%s] violates %s: %s\n", v.Index, v.Key, v.Assertion, v.Error)
		}
		for _, path := range st.Bundles {
			fmt.Printf("forensics: %s on the coordinator host (run `erpi explain %s` there)\n", path, path)
		}
		return 0
	}
	fmt.Println("not reproduced")
	return 3
}

// writeTrace dumps the registry's retained spans as Chrome trace_event
// JSON at path.
func writeTrace(path string, reg *telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteTrace(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
