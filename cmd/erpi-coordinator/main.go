// Command erpi-coordinator runs ER-π's crash-tolerant distributed
// exploration service (DESIGN.md §4.10): a coordinator that leases
// contiguous interleaving ranges to workers over TCP with epoch-fenced
// lockserver leases, and the workers that serve it.
//
//	erpi-coordinator serve -journal-root ./jobs -status-addr :8080
//	erpi-coordinator work -addr 127.0.0.1:7400 -name w1
//	erpi-coordinator submit -api http://127.0.0.1:8080 -bug Roshi-1 -wait 60
//
// serve prints its bound addresses on stdout ("coordinator listening on
// HOST:PORT", "lockserver listening on HOST:PORT", "status:
// http://HOST:PORT/jobs") so scripts can parse them.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/er-pi/erpi/internal/coordinator"
	"github.com/er-pi/erpi/internal/lockserver"
	"github.com/er-pi/erpi/internal/logx"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() int {
	fmt.Fprintln(os.Stderr, `usage:
  erpi-coordinator serve  [flags]   run the coordinator service
  erpi-coordinator work   [flags]   run a worker against a coordinator
  erpi-coordinator submit [flags]   submit a job to a running coordinator

run "erpi-coordinator <cmd> -h" for the flags of each subcommand`)
	return 2
}

func run(args []string) int {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "serve":
		return runServe(args[1:])
	case "work":
		return runWork(args[1:])
	case "submit":
		return runSubmit(args[1:])
	default:
		return usage()
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "erpi-coordinator:", err)
	return 1
}

func runServe(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:0", "worker listen address")
		lockAddr    = fs.String("lock-addr", "", "external lockserver address for range leases")
		embedLock   = fs.Bool("embed-lock", false, "start an in-process lockserver on an ephemeral port")
		journalRoot = fs.String("journal-root", "", "directory for per-job journals (required)")
		leaseTTL    = fs.Duration("lease-ttl", 2*time.Second, "range lease TTL")
		rangeSize   = fs.Int("range-size", 16, "interleavings per lease")
		statusAddr  = fs.String("status-addr", "", "serve the jobs API, progress, and metrics on this host:port")
		resume      = fs.Bool("resume", true, "recover jobs found under -journal-root")
		localN      = fs.Int("local-workers", 0, "also run this many in-process workers")
		logLevel    = fs.String("log-level", "info", "log verbosity: debug, info, warn, error")
	)
	_ = fs.Parse(args)
	if err := logx.SetLevel(*logLevel); err != nil {
		return fail(err)
	}
	if *journalRoot == "" {
		return fail(fmt.Errorf("serve: -journal-root is required"))
	}

	var lockSrv *lockserver.Server
	if *embedLock {
		if *lockAddr != "" {
			return fail(fmt.Errorf("serve: -embed-lock and -lock-addr are mutually exclusive"))
		}
		lockSrv = lockserver.NewServer(lockserver.NewStore())
		bound, err := lockSrv.Listen("127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		defer lockSrv.Close()
		*lockAddr = bound
		fmt.Println("lockserver listening on", bound)
	}

	reg := telemetry.New()
	svc, err := coordinator.New(coordinator.Options{
		Addr:        *addr,
		LockAddr:    *lockAddr,
		JournalRoot: *journalRoot,
		LeaseTTL:    *leaseTTL,
		RangeSize:   *rangeSize,
		Telemetry:   reg,
	})
	if err != nil {
		return fail(err)
	}
	defer svc.Close()
	if *resume {
		if err := svc.Recover(); err != nil {
			return fail(err)
		}
	}
	fmt.Println("coordinator listening on", svc.Addr())

	if *statusAddr != "" {
		status, err := telemetry.NewStatusServer(*statusAddr, reg)
		if err != nil {
			return fail(err)
		}
		defer status.Close()
		// Fleet view: /progress, /metrics, and /trace now aggregate every
		// worker's telemetry reports on top of the coordinator's own.
		status.ServeFederation(svc.Federation())
		status.Handle("/jobs", svc.APIHandler())
		status.Handle("/jobs/", svc.APIHandler())
		fmt.Printf("status: http://%s/jobs\n", status.Addr())
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < *localN; i++ {
		name := fmt.Sprintf("local-%d", i+1)
		// Each local worker gets its own registry so its lane in the fleet
		// view is distinct from the coordinator's.
		wreg := telemetry.New()
		go func() {
			_ = coordinator.RunWorker(ctx, coordinator.WorkerOptions{Addr: svc.Addr(), Name: name, Telemetry: wreg})
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("coordinator shutting down")
	return 0
}

func runWork(args []string) int {
	fs := flag.NewFlagSet("work", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "", "coordinator worker address (required)")
		name     = fs.String("name", "", "unique worker name (default w<pid>)")
		job      = fs.String("job", "", "serve only this job id")
		once     = fs.Bool("once", false, "exit after the first job completes")
		logLevel = fs.String("log-level", "info", "log verbosity: debug, info, warn, error")
	)
	_ = fs.Parse(args)
	if err := logx.SetLevel(*logLevel); err != nil {
		return fail(err)
	}
	if *addr == "" {
		return fail(fmt.Errorf("work: -addr is required"))
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	err := coordinator.RunWorker(ctx, coordinator.WorkerOptions{
		Addr:      *addr,
		Name:      *name,
		Job:       *job,
		Once:      *once,
		Telemetry: telemetry.New(),
	})
	if err != nil && ctx.Err() == nil {
		return fail(err)
	}
	return 0
}

func runSubmit(args []string) int {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		api      = fs.String("api", "", "coordinator status URL, e.g. http://127.0.0.1:8080 (required)")
		bugName  = fs.String("bug", "", "Table-1 bug benchmark to explore")
		miscon   = fs.String("miscon", "", "misconception scenario to explore (e.g. CRDTs#4)")
		mode     = fs.String("mode", "erpi", "exploration mode: erpi, dfs, rand")
		seed     = fs.Int64("seed", 1, "seed for rand mode")
		capN     = fs.Int("cap", runner.DefaultMaxInterleavings, "max interleavings")
		rangeSz  = fs.Int("range-size", 0, "override the service's range size")
		stop     = fs.Bool("stop-on-violation", false, "end the job at the first assertion failure")
		wait     = fs.Int("wait", 0, "seconds to block for completion (0 = return immediately)")
		logLevel = fs.String("log-level", "info", "log verbosity: debug, info, warn, error")
	)
	_ = fs.Parse(args)
	if err := logx.SetLevel(*logLevel); err != nil {
		return fail(err)
	}
	if *api == "" {
		return fail(fmt.Errorf("submit: -api is required"))
	}
	spec := coordinator.JobSpec{
		Bug:              *bugName,
		Miscon:           *miscon,
		Mode:             *mode,
		Seed:             *seed,
		MaxInterleavings: *capN,
		RangeSize:        *rangeSz,
		StopOnViolation:  *stop,
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(*api+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		return fail(fmt.Errorf("submit: %s: %s", resp.Status, bytes.TrimSpace(data)))
	}
	var st coordinator.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return fail(err)
	}
	fmt.Printf("submitted %s (%s)\n", st.ID, st.Label)
	if *wait <= 0 {
		os.Stdout.Write(data)
		return 0
	}
	final, err := waitJob(*api, st.ID, *wait)
	if err != nil {
		return fail(err)
	}
	out, _ := json.MarshalIndent(final, "", "  ")
	fmt.Println(string(out))
	if final.State != coordinator.StateDone {
		return 3
	}
	return 0
}

func waitJob(api, id string, secs int) (*coordinator.JobStatus, error) {
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%s?wait=%d", api, id, secs))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("wait: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	var st coordinator.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, err
	}
	return &st, nil
}
