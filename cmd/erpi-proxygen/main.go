// Command erpi-proxygen rewrites Go source so RDL call sites route through
// ER-π's interception hooks (the paper's §5.1.1 go/ast proxy generation):
//
//	erpi-proxygen -receivers replicaState app.go            # to stdout
//	erpi-proxygen -packages crdt -w app.go helpers.go       # in place
//	erpi-proxygen -receivers store -helpers -w app.go       # emit hook decls too
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/er-pi/erpi/internal/astproxy"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		receivers = flag.String("receivers", "", "comma-separated receiver identifiers to proxy")
		packages  = flag.String("packages", "", "comma-separated package qualifiers to proxy")
		write     = flag.Bool("w", false, "rewrite files in place instead of printing")
		helpers   = flag.Bool("helpers", false, "emit the hook declarations into the first rewritten file")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "erpi-proxygen: no input files")
		flag.Usage()
		return 2
	}
	cfg := astproxy.Config{
		Receivers: splitList(*receivers),
		Packages:  splitList(*packages),
	}
	if len(cfg.Receivers) == 0 && len(cfg.Packages) == 0 {
		fmt.Fprintln(os.Stderr, "erpi-proxygen: nothing to proxy (set -receivers and/or -packages)")
		return 2
	}
	for i, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "erpi-proxygen:", err)
			return 1
		}
		fileCfg := cfg
		fileCfg.EmitHelpers = *helpers && i == 0
		out, report, err := astproxy.RewriteFile(path, src, fileCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "erpi-proxygen:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "%s: %s\n", path, report.Summary())
		if *write {
			if err := os.WriteFile(path, out, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "erpi-proxygen:", err)
				return 1
			}
			continue
		}
		os.Stdout.Write(out)
	}
	return 0
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
