package erpi_test

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	erpi "github.com/er-pi/erpi"
	"github.com/er-pi/erpi/internal/constraints"
	"github.com/er-pi/erpi/internal/crdt"
	"github.com/er-pi/erpi/internal/datalog"
	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/prune"
)

// gsetState is a minimal State over a grow-only set.
type gsetState struct {
	set *crdt.GSet
}

func newGSetState() *gsetState { return &gsetState{set: crdt.NewGSet()} }

func (s *gsetState) Apply(op erpi.Op) (string, error) {
	switch op.Name {
	case "add":
		if !s.set.Add(op.Args[0]) {
			return "", erpi.ErrFailedOp
		}
		return "", nil
	case "read":
		return strings.Join(s.set.Elements(), ","), nil
	default:
		return "", errors.New("unknown op " + op.Name)
	}
}

func (s *gsetState) SyncPayload() ([]byte, error) { return json.Marshal(s.set.Elements()) }

func (s *gsetState) ApplySync(payload []byte) error {
	var elems []string
	if err := json.Unmarshal(payload, &elems); err != nil {
		return err
	}
	for _, e := range elems {
		s.set.Add(e)
	}
	return nil
}

func (s *gsetState) Snapshot() ([]byte, error) { return s.SyncPayload() }

func (s *gsetState) Restore(snap []byte) error {
	s.set = crdt.NewGSet()
	return s.ApplySync(snap)
}

func (s *gsetState) Fingerprint() string { return strings.Join(s.set.Elements(), ",") }

func newTwoReplicaCluster() (*erpi.Cluster, error) {
	return erpi.NewCluster(map[erpi.ReplicaID]erpi.State{
		"A": newGSetState(),
		"B": newGSetState(),
	}), nil
}

func TestSessionStartEndWorkflow(t *testing.T) {
	sess, err := erpi.NewSession(newTwoReplicaCluster)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	rec.Update("A", "add", "x")
	rec.Update("B", "add", "y")
	rec.SyncPair("A", "B")
	rec.SyncPair("B", "A")
	res, err := sess.End(erpi.Convergence{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explored == 0 {
		t.Fatal("nothing explored")
	}
	// Without the final syncs in some orders, replicas can diverge: the
	// convergence assertion must catch interleavings where a sync fires
	// before the update it should carry.
	if !res.Exhausted {
		t.Fatal("small space must be exhausted")
	}
}

func TestSessionDetectsDivergence(t *testing.T) {
	// Workload with NO final cross-sync after B's update: in interleavings
	// where the sync to B happens before A's add, states diverge.
	sess, err := erpi.NewSession(newTwoReplicaCluster)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	rec.Update("A", "add", "x")
	rec.Sync("A", "B") // standalone sync: payload captured at exec time
	res, err := sess.End(erpi.Convergence{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("sync-before-update interleaving must diverge")
	}
}

func TestSessionDoubleStartFails(t *testing.T) {
	sess, err := erpi.NewSession(newTwoReplicaCluster)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Start(); err == nil {
		t.Fatal("double start must fail")
	}
}

func TestSessionEndWithoutStartFails(t *testing.T) {
	sess, err := erpi.NewSession(newTwoReplicaCluster)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.End(); err == nil {
		t.Fatal("end without start must fail")
	}
}

func TestNewSessionNilFactory(t *testing.T) {
	if _, err := erpi.NewSession(nil); err == nil {
		t.Fatal("nil factory must be rejected")
	}
}

func TestSessionOptions(t *testing.T) {
	store := datalog.NewStore()
	sess, err := erpi.NewSession(newTwoReplicaCluster,
		erpi.WithMode(erpi.ModeERPi),
		erpi.WithMaxInterleavings(5),
		erpi.WithSeed(7),
		erpi.WithStopOnViolation(),
		erpi.WithStore(store),
		erpi.WithGroups([][]erpi.EventID{{0, 1}}),
		erpi.WithTestedReplicas("B"),
	)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	rec.Update("A", "add", "x")
	rec.Sync("A", "B")
	rec.Update("B", "add", "y")
	res, err := sess.End()
	if err != nil {
		t.Fatal(err)
	}
	if res.Explored > 5 {
		t.Fatalf("explored %d beyond cap", res.Explored)
	}
	if store.Count() != res.Explored {
		t.Fatalf("store %d vs explored %d", store.Count(), res.Explored)
	}
}

func TestSessionConstraintsDir(t *testing.T) {
	dir := t.TempDir()
	// Constraints: declare the two adds independent so their orders merge.
	err := constraints.Write(dir, "c1.json", constraints.File{
		IndependentSets: []prune.IndependenceSpec{{Events: []event.ID{0, 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := erpi.NewSession(newTwoReplicaCluster,
		erpi.WithConstraintsDir(filepath.Clean(dir)))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	rec.Update("A", "add", "x")
	rec.Update("B", "add", "y")
	rec.SyncPair("A", "B")
	if _, err := sess.End(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionFailedOpsRecorded(t *testing.T) {
	sess, err := erpi.NewSession(newTwoReplicaCluster)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	rec.Update("A", "add", "x")
	rec.Update("A", "add", "x") // duplicate add: failed op
	res, err := sess.End(erpi.NoFailedOps{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("duplicate add must trip NoFailedOps in every interleaving")
	}
}

func TestSessionFuzzMode(t *testing.T) {
	sess, err := erpi.NewSession(newTwoReplicaCluster,
		erpi.WithMode(erpi.ModeFuzz),
		erpi.WithSeed(5),
		erpi.WithMaxInterleavings(20),
	)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	rec.Update("A", "add", "x")
	rec.Sync("A", "B")
	rec.Update("B", "add", "y")
	rec.Sync("B", "A")
	res, err := sess.End(erpi.Convergence{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explored == 0 {
		t.Fatal("fuzz mode explored nothing")
	}
	if len(res.Violations) == 0 {
		t.Fatal("fuzz mode must hit the divergent orders of this workload")
	}
}

func TestSessionProfiler(t *testing.T) {
	p := erpi.NewProfiler()
	newCluster := func() (*erpi.Cluster, error) {
		return erpi.NewCluster(map[erpi.ReplicaID]erpi.State{
			"A": p.Wrap(newGSetState()),
			"B": p.Wrap(newGSetState()),
		}), nil
	}
	sess, err := erpi.NewSession(newCluster, erpi.WithProfiler(p))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	rec.Update("A", "add", "x")
	rec.SyncPair("A", "B")
	if _, err := sess.End(); err != nil {
		t.Fatal(err)
	}
	r := p.Snapshot()
	if r.Interleavings == 0 || r.SyncBytesOut == 0 {
		t.Fatalf("profiler saw nothing: %+v", r)
	}
	if !strings.Contains(r.Render(), "interleavings explored") {
		t.Fatal("render broken")
	}
}

func TestSessionJournalResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	build := func() (*erpi.Session, error) {
		return erpi.NewSession(newTwoReplicaCluster, erpi.WithJournal(dir), erpi.WithMaxInterleavings(5))
	}
	sess, err := build()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	rec.Update("A", "add", "x")
	rec.Update("B", "add", "y")
	rec.SyncPair("A", "B")
	first, err := sess.End()
	if err != nil {
		t.Fatal(err)
	}
	if first.Explored != 5 || first.Resumed != 0 {
		t.Fatalf("first: explored=%d resumed=%d", first.Explored, first.Resumed)
	}
	// A second identical session resumes past the journaled interleavings.
	sess2, err := erpi.NewSession(newTwoReplicaCluster, erpi.WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := sess2.Start()
	if err != nil {
		t.Fatal(err)
	}
	rec2.Update("A", "add", "x")
	rec2.Update("B", "add", "y")
	rec2.SyncPair("A", "B")
	second, err := sess2.End()
	if err != nil {
		t.Fatal(err)
	}
	if second.Resumed != 5 {
		t.Fatalf("second run resumed %d, want 5", second.Resumed)
	}
}

// TestSessionChaosReplay drives the public fault-injection surface: a
// scheduled replica crash makes some interleavings fail, which must land
// in Result.Quarantined while exploration continues to the end.
func TestSessionChaosReplay(t *testing.T) {
	sess, err := erpi.NewSession(newTwoReplicaCluster,
		erpi.WithFaults(erpi.FaultSchedule{
			Seed: 7,
			Faults: []erpi.Fault{{
				Kind:     erpi.FaultCrashReplica,
				Replica:  "B",
				At:       1,
				Duration: 10,
			}},
		}),
		erpi.WithRetries(-1),
		erpi.WithDeadline(30*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	rec.Update("A", "add", "x")
	rec.Update("B", "add", "y")
	rec.SyncPair("A", "B")
	rec.SyncPair("B", "A")
	res, err := sess.End()
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("run must not be interrupted")
	}
	if res.Explored == 0 {
		t.Fatal("chaos must not abort exploration")
	}
	if len(res.Quarantined) == 0 {
		t.Fatal("crashing B for the whole run must quarantine interleavings")
	}
	for _, q := range res.Quarantined {
		if !errors.Is(q.Err, erpi.ErrReplicaDown) {
			t.Fatalf("quarantine cause = %v; want ErrReplicaDown", q.Err)
		}
	}
}
